//===- consistency/StreamCheck.cpp - Streaming Definition 6 checker -------===//

#include "consistency/StreamCheck.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace eventnet;
using namespace eventnet::consistency;
using eventnet::netkat::Packet;

const char *consistency::streamVerdictName(StreamVerdict V) {
  switch (V) {
  case StreamVerdict::Ok:
    return "ok";
  case StreamVerdict::Violated:
    return "violated";
  case StreamVerdict::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

StreamChecker::StreamChecker(const nes::Nes &N, const topo::Topology &Topo,
                             StreamOptions O)
    : N(N), Topo(Topo), O(O) {
  GuardQ.resize(N.numEvents());
  GuardQOverflow.assign(N.numEvents(), false);
  FOWanted.assign(N.numEvents(), false);
  // C0 = g(∅).
  auto S0 = N.setIndex(Occurred);
  if (S0) {
    Configs.push_back(&N.configOf(*S0));
  } else {
    // A structure whose family lacks ∅ is malformed; never claim a pass.
    inconclusive("unsupported");
    Configs.push_back(nullptr);
  }
  AllConfigMask = 1;
  if (this->O.Window == 0)
    this->O.Window = 1;
}

StreamChecker::~StreamChecker() = default;

void StreamChecker::violate(std::string Reason) {
  // A known-gappy feed (noteGap) can fake every violation class: a shed
  // tail truncates a chain into one "not processed by any single
  // configuration", a shed witness fakes a missing FO trigger. A
  // violation is an actionable alarm that must never be wrong — once
  // gappy, degrade instead. Violations recorded before the gap stand.
  if (Gappy) {
    inconclusive(GapCause.c_str());
    return;
  }
  if (CurVerdict == StreamVerdict::Violated)
    return;
  CurVerdict = StreamVerdict::Violated;
  ViolationReason = std::move(Reason);
}

void StreamChecker::inconclusive(const char *Cause) {
  if (std::find(Causes.begin(), Causes.end(), Cause) == Causes.end())
    Causes.push_back(Cause);
  if (CurVerdict == StreamVerdict::Ok)
    CurVerdict = StreamVerdict::Inconclusive;
}

void StreamChecker::noteCause(const std::string &Cause) {
  if (std::find(Causes.begin(), Causes.end(), Cause) == Causes.end())
    Causes.push_back(Cause);
  if (CurVerdict == StreamVerdict::Ok)
    CurVerdict = StreamVerdict::Inconclusive;
}

void StreamChecker::noteGap(const std::string &Cause) {
  if (Finished)
    return;
  Gappy = true;
  GapCause = Cause;
  noteCause(Cause);
}

uint32_t StreamChecker::denseSwitch(SwitchId Sw) {
  auto [It, Inserted] = SwDense.emplace(Sw, (uint32_t)SwDense.size());
  if (Inserted) {
    SwCount.push_back(0);
    SwLastVC.emplace_back();
  }
  return It->second;
}

uint64_t StreamChecker::nodeBytes(const Node &Nd) const {
  return sizeof(Node) + Nd.VC.capacity() * sizeof(uint32_t) +
         Nd.Lp.fields().capacity() *
             sizeof(std::pair<FieldId, Value>);
}

void StreamChecker::trackPeaks() {
  St.PeakWindow = std::max<uint64_t>(St.PeakWindow, NodeOf.size());
  uint64_t B = CurNodeBytes;
  B += Heap.size() * (sizeof(PendItem) + 64);
  B += NodeOf.size() * 48;                    // hash-map node overhead
  B += GuardQTotal * sizeof(GuardMatch);
  B += (Pruned.size() + PendingExcuse.size()) * 32;
  for (const auto &VC : SwLastVC)
    B += VC.capacity() * sizeof(uint32_t);
  St.PeakResidentBytes = std::max(St.PeakResidentBytes, B);
}

void StreamChecker::feedEntry(uint64_t Ticket, int64_t Parent,
                              const Packet &Lp, bool IsDelivery,
                              bool IsDup) {
  if (Finished)
    return;
  ++St.EntriesIngested;
  Heap.push(PendItem{Ticket, Parent, Lp, IsDelivery, IsDup});
}

void StreamChecker::feedExcuse(uint64_t Ticket) {
  if (Finished)
    return;
  auto F = NodeOf.find(Ticket);
  if (F != NodeOf.end()) {
    Live.at(F->second.first).Nodes[F->second.second].Excused = true;
    return;
  }
  if ((int64_t)Ticket > LastCommitted) {
    PendingExcuse.insert(Ticket);
    return;
  }
  if (Pruned.count(Ticket))
    return; // an excused hop inside a pruned duplicate subtree
  // The excused entry already retired (or was cut by the window): its
  // chain was finalized under maximal membership instead of prefix
  // membership, so the verdict may be too strict — degrade, never guess.
  inconclusive("window_exceeded");
}

void StreamChecker::advance(uint64_t Watermark) {
  if (Finished)
    return;
  while (!Heap.empty() && Heap.top().Ticket <= Watermark) {
    PendItem It = Heap.top();
    Heap.pop();
    commit(It);
  }
  trackPeaks();
}

void StreamChecker::commit(PendItem &It) {
  if ((int64_t)It.Ticket <= LastCommitted) {
    // Behind the commit frontier: the feed broke ticket order (or
    // duplicated a ticket); everything downstream of this entry is
    // unverifiable.
    inconclusive("out_of_order");
    return;
  }
  LastCommitted = (int64_t)It.Ticket;
  ++St.EntriesChecked;

  // A violation is terminal (the batch oracle also reports the first):
  // keep counting, stop maintaining state.
  if (CurVerdict == StreamVerdict::Violated)
    return;

  // Ledgered-duplicate subtrees are excluded from the surviving trace —
  // from the chains, the per-switch order, and the witness extraction —
  // exactly as checkAgainstNes prunes before checking.
  bool ParentPruned =
      It.Parent >= 0 && Pruned.count((uint64_t)It.Parent) != 0;
  if (It.IsDup || ParentPruned) {
    Pruned.insert(It.Ticket);
    PrunedOrder.push_back(It.Ticket);
    PendingExcuse.erase(It.Ticket);
    ++St.EntriesPruned;
    return;
  }

  // Locate the parent; a missing parent means the window already evicted
  // it (chain split) — degrade and exclude the fragment, which could
  // otherwise only produce spurious violations.
  uint64_t Root = It.Ticket;
  int32_t ParentIdx = -1;
  Tree *T = nullptr;
  if (It.Parent < 0) {
    T = &Live[Root];
  } else {
    auto F = NodeOf.find((uint64_t)It.Parent);
    if (F == NodeOf.end()) {
      inconclusive("window_exceeded");
      Pruned.insert(It.Ticket);
      PrunedOrder.push_back(It.Ticket);
      PendingExcuse.erase(It.Ticket);
      return;
    }
    Root = F->second.first;
    T = &Live.at(Root);
    ParentIdx = (int32_t)F->second.second;
  }

  // Vector clock over switches: VC = max(parent VC, predecessor-at-
  // switch VC), own component = the new per-switch position. This is
  // Definition 1's happens-before exactly: A hb B iff VC(B)[sw(A)] >=
  // pos(A) (per-switch total order plus packet-tree order, closed).
  uint32_t SwIdx = denseSwitch(It.Lp.sw());
  if (SwCount[SwIdx] == UINT32_MAX) {
    inconclusive("unsupported"); // per-switch position would wrap
    return;
  }
  uint32_t SwPos = (uint32_t)++SwCount[SwIdx];
  std::vector<uint32_t> VC = SwLastVC[SwIdx];
  if (ParentIdx >= 0) {
    const std::vector<uint32_t> &PV = T->Nodes[ParentIdx].VC;
    if (VC.size() < PV.size())
      VC.resize(PV.size(), 0);
    for (size_t I = 0; I != PV.size(); ++I)
      VC[I] = std::max(VC[I], PV[I]);
  }
  if (VC.size() <= SwIdx)
    VC.resize(SwIdx + 1, 0);
  VC[SwIdx] = SwPos;
  SwLastVC[SwIdx] = VC;

  Node Nd;
  Nd.Ticket = It.Ticket;
  Nd.Parent = ParentIdx;
  Nd.SwIdx = SwIdx;
  Nd.SwPos = SwPos;
  Nd.IsDelivery = It.IsDelivery;
  Nd.PrefixMask =
      ParentIdx < 0
          ? AllConfigMask
          : relatedMask(T->Nodes[ParentIdx].Lp, It.Lp,
                        T->Nodes[ParentIdx].PrefixMask);
  Nd.Excused = PendingExcuse.erase(It.Ticket) != 0;
  Nd.Lp = It.Lp;
  Nd.VC = std::move(VC);
  CurNodeBytes += nodeBytes(Nd);
  T->Nodes.push_back(std::move(Nd));
  uint32_t NodeIdx = (uint32_t)(T->Nodes.size() - 1);
  if (ParentIdx >= 0)
    ++T->Nodes[ParentIdx].Children;
  T->LastActivity = It.Ticket;
  NodeOf.emplace(It.Ticket, std::make_pair(Root, NodeIdx));

  // Guard-match queues feed FO resolution: collect matches of every
  // event that has not occurred (its FO is in the future) or whose FO is
  // still unresolved.
  for (unsigned Id = 0; Id != N.numEvents(); ++Id) {
    if (Occurred.test(Id) && !FOWanted[Id])
      continue;
    if (!N.event(Id).matches(It.Lp))
      continue;
    if (GuardQ[Id].size() >= O.GuardQueueCap) {
      GuardQOverflow[Id] = true;
      continue;
    }
    GuardQ[Id].push_back(GuardMatch{It.Ticket});
    ++GuardQTotal;
  }

  // Witness extraction, the batch checker's exact rule: event ids in
  // order against the evolving occurred set.
  for (unsigned Id = 0; Id != N.numEvents(); ++Id) {
    if (Occurred.test(Id) || !N.event(Id).matches(It.Lp))
      continue;
    if (!N.enables(Occurred, Id))
      continue;
    DenseBitSet Ext = Occurred;
    Ext.set(Id);
    if (!N.con(Ext))
      continue;
    Occurred.set(Id);
    onFresh(Id);
    if (CurVerdict == StreamVerdict::Violated)
      return;
  }
  resolvePendingFOs();

  if (++CommitsSinceSweep >= 256) {
    CommitsSinceSweep = 0;
    retireQuietTrees();
  }
  enforceWindow();
}

void StreamChecker::onFresh(unsigned EventId) {
  ++St.EventsObserved;
  EventRec R;
  R.EventId = EventId;
  EventRecs.push_back(std::move(R));
  PendingFO.push_back((unsigned)(EventRecs.size() - 1));
  FOWanted[EventId] = true;

  // The new configuration C_{i+1} = g(occurred set).
  if (Configs.size() >= 64) {
    inconclusive("unsupported"); // config mask width exhausted
    return;
  }
  auto S = N.setIndex(Occurred);
  if (!S) {
    // Extraction only adds consistent enabled events, so the set is a
    // family member by construction; a miss means the structure and the
    // trace disagree in a way the streaming form cannot arbitrate.
    inconclusive("unsupported");
    return;
  }
  Configs.push_back(&N.configOf(*S));
  AllConfigMask = Configs.size() >= 64
                      ? ~uint64_t(0)
                      : ((uint64_t(1) << Configs.size()) - 1);
  extendMasksForNewConfig();
}

void StreamChecker::resolvePendingFOs() {
  while (!PendingFO.empty()) {
    unsigned WIdx = PendingFO.front();
    EventRec &R = EventRecs[WIdx];
    std::deque<GuardMatch> &Q = GuardQ[R.EventId];
    while (!Q.empty() && (int64_t)Q.front().Ticket <= FOFrontier) {
      Q.pop_front();
      --GuardQTotal;
    }
    if (Q.empty())
      return; // the FO is a future entry; try again on the next commit
    R.Resolved = true;
    R.KTicket = Q.front().Ticket;
    FOFrontier = (int64_t)R.KTicket;
    FOWanted[R.EventId] = false;
    PendingFO.pop_front();

    if (AnyRetired && R.KTicket <= MaxRetiredTicket) {
      // Entries newer than this FO already retired: their AllAfter /
      // bullet-3 obligations against it were never evaluated.
      inconclusive("window_exceeded");
    }
    auto F = NodeOf.find(R.KTicket);
    if (F != NodeOf.end()) {
      Tree &T = Live.at(F->second.first);
      Node &Nd = T.Nodes[F->second.second];
      R.Usable = true;
      R.KSwIdx = Nd.SwIdx;
      R.KSwPos = Nd.SwPos;
      R.KVC = Nd.VC;
      // FO bullet 3: some chain through the FO entry must be processed
      // by the configuration preceding the event, i.e. C_i for witness
      // index i.
      Nd.ReqConfig = (int16_t)WIdx;
    } else {
      inconclusive("window_exceeded");
    }

    // The frontier moved: matches at or before it can never be an FO.
    for (std::deque<GuardMatch> &GQ : GuardQ)
      while (!GQ.empty() && (int64_t)GQ.front().Ticket <= FOFrontier) {
        GQ.pop_front();
        --GuardQTotal;
      }
  }
}

uint64_t StreamChecker::relatedMask(const Packet &From, const Packet &To,
                                    uint64_t ParentMask) const {
  uint64_t Out = 0;
  uint64_t M = ParentMask & AllConfigMask;
  while (M) {
    unsigned Ci = (unsigned)__builtin_ctzll(M);
    M &= M - 1;
    const topo::Configuration *C = Configs[Ci];
    if (C && C->related(Topo, From, To))
      Out |= uint64_t(1) << Ci;
  }
  return Out;
}

void StreamChecker::extendMasksForNewConfig() {
  uint64_t Bit = uint64_t(1) << (Configs.size() - 1);
  const topo::Configuration *C = Configs.back();
  if (!C)
    return;
  for (auto &[Root, T] : Live) {
    (void)Root;
    for (Node &Nd : T.Nodes) { // insertion order: parents first
      if (Nd.Parent < 0)
        Nd.PrefixMask |= Bit;
      else if ((T.Nodes[Nd.Parent].PrefixMask & Bit) &&
               C->related(Topo, T.Nodes[Nd.Parent].Lp, Nd.Lp))
        Nd.PrefixMask |= Bit;
    }
  }
}

void StreamChecker::retireTree(uint64_t RootTicket, bool Forced) {
  auto LI = Live.find(RootTicket);
  if (LI == Live.end())
    return;
  std::vector<Node> &Ns = LI->second.Nodes;

  // A forced (window-cap) retirement may cut chains that are still in
  // flight: an empty membership then means "cut", not "inconsistent",
  // and every conclusion that would rest on those chains degrades to
  // inconclusive instead of violated.
  bool AnyCutChain = false;

  std::vector<uint32_t> Path;
  for (uint32_t L = 0; L != Ns.size(); ++L) {
    if (Ns[L].Children != 0)
      continue; // internal node; chains end at leaves
    Path.clear();
    for (int32_t I = (int32_t)L; I >= 0; I = Ns[I].Parent)
      Path.push_back((uint32_t)I);
    ++St.ChainsRetired;

    // Single-configuration membership: the leaf's prefix mask restricted
    // by the batch checker's exact maximality rule — unless a ledgered
    // fault excused the leaf, which waives maximality (prefix trace).
    const Node &Leaf = Ns[L];
    uint64_t Member = 0;
    if (Leaf.Excused) {
      Member = Leaf.PrefixMask;
    } else {
      bool Delivered = Leaf.Parent >= 0 &&
                       Topo.isHostPort(Leaf.Lp.loc()) &&
                       !Topo.linkFrom(Leaf.Lp.loc());
      uint64_t M = Leaf.PrefixMask;
      while (M) {
        unsigned Ci = (unsigned)__builtin_ctzll(M);
        M &= M - 1;
        if (Delivered ||
            (Configs[Ci] && Configs[Ci]->step(Topo, Leaf.Lp).empty()))
          Member |= uint64_t(1) << Ci;
      }
    }

    if (Member == 0) {
      if (Forced) {
        AnyCutChain = true;
        inconclusive("window_exceeded");
        continue; // no conclusions can rest on a cut chain
      }
      std::ostringstream OS;
      OS << "packet trace ending at ticket " << Leaf.Ticket
         << " is not processed by any single configuration";
      violate(OS.str());
    }

    // Definition 2's window conditions against every resolved FO. A
    // retired chain can never violate these against a *future* event:
    // its member indices all precede any future index (HasEarly), and a
    // future FO cannot happen-before retired entries unless it is older
    // than the retirement frontier — which resolvePendingFOs flags.
    for (size_t I = 0; I != EventRecs.size(); ++I) {
      const EventRec &R = EventRecs[I];
      if (!R.Resolved || !R.Usable)
        continue;
      bool AllBefore = true, AllAfter = true;
      for (uint32_t PI : Path) {
        const Node &A = Ns[PI];
        if (A.Ticket == R.KTicket) {
          AllBefore = AllAfter = false;
          break;
        }
        if (!(A.SwIdx < R.KVC.size() && R.KVC[A.SwIdx] >= A.SwPos))
          AllBefore = false;
        if (!(R.KSwIdx < A.VC.size() && A.VC[R.KSwIdx] >= R.KSwPos))
          AllAfter = false;
        if (!AllBefore && !AllAfter)
          break;
      }
      uint64_t EarlyBits = I + 1 >= 64 ? ~uint64_t(0)
                                       : ((uint64_t(1) << (I + 1)) - 1);
      if (AllBefore && !(Member & EarlyBits)) {
        std::ostringstream OS;
        OS << "update happened too early: a packet trace entirely "
              "before "
           << N.event(R.EventId).str()
           << " is only consistent with a later configuration";
        violate(OS.str());
      }
      if (AllAfter && !(Member & ~EarlyBits)) {
        std::ostringstream OS;
        OS << "update happened too late: a packet trace entirely after "
           << N.event(R.EventId).str()
           << " is only consistent with an earlier configuration";
        violate(OS.str());
      }
    }

    for (uint32_t PI : Path)
      if (Ns[PI].ReqConfig >= 0)
        Ns[PI].SeenMemberMask |= Member;
  }

  for (const Node &Nd : Ns) {
    if (Nd.ReqConfig >= 0 &&
        !(Nd.SeenMemberMask & (uint64_t(1) << Nd.ReqConfig))) {
      // Bullet 3 is existential over chains through the node; if a cut
      // chain could have been the witness, absence is not a violation.
      if (AnyCutChain) {
        inconclusive("window_exceeded");
      } else {
        std::ostringstream OS;
        OS << "event "
           << N.event(EventRecs[Nd.ReqConfig].EventId).str()
           << " (ticket " << Nd.Ticket
           << ") was not triggered by a packet of the preceding "
              "configuration";
        violate(OS.str());
      }
    }
    CurNodeBytes -= std::min(CurNodeBytes, nodeBytes(Nd));
    NodeOf.erase(Nd.Ticket);
    MaxRetiredTicket = std::max(MaxRetiredTicket, Nd.Ticket);
    AnyRetired = true;
  }
  ++St.TreesRetired;
  Live.erase(LI);
}

void StreamChecker::retireQuietTrees() {
  uint64_t Frontier =
      LastCommitted < 0 ? 0 : (uint64_t)LastCommitted;
  std::vector<uint64_t> Quiet;
  for (const auto &[Root, T] : Live)
    if (T.LastActivity + O.QuietHorizon < Frontier)
      Quiet.push_back(Root);
  // Lenient: a quiet tree with an open chain is either silent loss (the
  // drop audit's job) or a ticket-gap straggler — inconclusive, not
  // violated. Only finish() may treat an open chain as a violation.
  for (uint64_t Root : Quiet)
    retireTree(Root, /*Forced=*/true);

  while (!PrunedOrder.empty() &&
         PrunedOrder.front() + O.QuietHorizon < Frontier) {
    Pruned.erase(PrunedOrder.front());
    PrunedOrder.pop_front();
  }
}

void StreamChecker::enforceWindow() {
  while (NodeOf.size() > O.Window && !Live.empty()) {
    // Force-retire the quietest tree. The retirement itself is sound
    // (everything checkable so far is checked), but the cap was the
    // reason — report inconclusive rather than let a cut chain pass
    // silently.
    inconclusive("window_exceeded");
    auto Oldest = Live.begin();
    for (auto It = Live.begin(); It != Live.end(); ++It)
      if (It->second.LastActivity < Oldest->second.LastActivity)
        Oldest = It;
    retireTree(Oldest->first, /*Forced=*/true);
  }
}

StreamResult StreamChecker::finish() {
  StreamResult Res;
  if (!Finished) {
    while (!Heap.empty()) {
      PendItem It = Heap.top();
      Heap.pop();
      commit(It);
    }
    // Unresolved first occurrences: the batch oracle fails its FO
    // search the same way — unless the guard queue overflowed, in which
    // case the FO may simply have been dropped.
    for (unsigned WIdx : PendingFO) {
      const EventRec &R = EventRecs[WIdx];
      if (GuardQOverflow[R.EventId]) {
        inconclusive("window_exceeded");
      } else {
        violate("FO does not exist: event " + N.event(R.EventId).str() +
                " never occurs after its predecessor's first occurrence");
      }
    }
    if (!PendingExcuse.empty())
      inconclusive("window_exceeded"); // excusal of an entry never seen
    std::vector<uint64_t> Roots;
    Roots.reserve(Live.size());
    for (const auto &KV : Live)
      Roots.push_back(KV.first);
    for (uint64_t Root : Roots)
      retireTree(Root);
    trackPeaks();
    Finished = true;
  }
  Res.Verdict = CurVerdict;
  if (CurVerdict == StreamVerdict::Violated) {
    Res.Reason = ViolationReason;
  } else {
    std::string Joined;
    for (const std::string &C : Causes) {
      if (!Joined.empty())
        Joined += ",";
      Joined += C;
    }
    Res.Reason = Joined;
  }
  Res.Stats = St;
  return Res;
}

StreamResult consistency::streamCheckTrace(const NetworkTrace &Tr,
                                           const topo::Topology &Topo,
                                           const nes::Nes &N,
                                           const FaultContext *Faults,
                                           StreamOptions O) {
  StreamChecker C(N, Topo, O);
  const auto &Entries = Tr.entries();
  std::vector<bool> Dup(Entries.size(), false);
  std::vector<bool> Exc(Entries.size(), false);
  if (Faults) {
    for (int I : Faults->DupEntries)
      if (I >= 0 && (size_t)I < Dup.size())
        Dup[I] = true;
    for (int I : Faults->ExcusedEntries)
      if (I >= 0 && (size_t)I < Exc.size())
        Exc[I] = true;
  }
  for (size_t I = 0; I != Entries.size(); ++I) {
    C.feedEntry(I, Entries[I].Parent, Entries[I].Lp,
                Entries[I].IsDelivery, Dup[I]);
    if (Exc[I])
      C.feedExcuse(I);
    C.advance(I); // commit as we go: exercises the online path
  }
  return C.finish();
}
