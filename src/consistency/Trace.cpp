//===- consistency/Trace.cpp - Network traces ------------------------------===//

#include "consistency/Trace.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace eventnet;
using namespace eventnet::consistency;

int NetworkTrace::append(TraceEntry E) {
  assert(E.Parent < static_cast<int>(Entries.size()) &&
         "parent must precede child");
  Entries.push_back(std::move(E));
  ClosureValid = false;
  return static_cast<int>(Entries.size()) - 1;
}

std::vector<std::vector<int>> NetworkTrace::packetTraces() const {
  // Children lists.
  std::vector<std::vector<int>> Children(Entries.size());
  std::vector<int> Roots;
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (Entries[I].Parent < 0)
      Roots.push_back(static_cast<int>(I));
    else
      Children[Entries[I].Parent].push_back(static_cast<int>(I));
  }

  std::vector<std::vector<int>> Out;
  std::vector<int> Chain;
  struct Rec {
    const std::vector<std::vector<int>> &Children;
    std::vector<std::vector<int>> &Out;
    void go(int Node, std::vector<int> &Chain) {
      Chain.push_back(Node);
      if (Children[Node].empty())
        Out.push_back(Chain);
      for (int C : Children[Node])
        go(C, Chain);
      Chain.pop_back();
    }
  };
  Rec R{Children, Out};
  for (int Root : Roots)
    R.go(Root, Chain);
  return Out;
}

void NetworkTrace::buildClosure() const {
  size_t N = Entries.size();
  size_t Words = (N + 63) / 64;
  Closure.assign(N, std::vector<uint64_t>(Words, 0));

  // Direct edges: parent -> child, and per-switch consecutive order.
  std::vector<std::vector<int>> Succ(N);
  std::map<SwitchId, int> LastAtSwitch;
  for (size_t I = 0; I != N; ++I) {
    if (Entries[I].Parent >= 0)
      Succ[Entries[I].Parent].push_back(static_cast<int>(I));
    SwitchId Sw = Entries[I].Lp.sw();
    auto It = LastAtSwitch.find(Sw);
    if (It != LastAtSwitch.end())
      Succ[It->second].push_back(static_cast<int>(I));
    LastAtSwitch[Sw] = static_cast<int>(I);
  }

  // Both orders respect log order, so a single reverse sweep closes the
  // relation: Closure[I] = union of {J} ∪ Closure[J] over successors J.
  for (size_t I = N; I-- > 0;) {
    for (int J : Succ[I]) {
      Closure[I][J / 64] |= uint64_t(1) << (J % 64);
      for (size_t W = 0; W != Words; ++W)
        Closure[I][W] |= Closure[J][W];
    }
  }
  ClosureValid = true;
}

bool NetworkTrace::happensBefore(int A, int B) const {
  assert(A >= 0 && B >= 0 && A < static_cast<int>(Entries.size()) &&
         B < static_cast<int>(Entries.size()) && "entry index out of range");
  if (!ClosureValid)
    buildClosure();
  return (Closure[A][B / 64] >> (B % 64)) & 1;
}

std::string NetworkTrace::str() const {
  std::ostringstream OS;
  for (size_t I = 0; I != Entries.size(); ++I) {
    OS << I << ": " << Entries[I].Lp.str();
    if (Entries[I].Parent >= 0)
      OS << " <- " << Entries[I].Parent;
    if (Entries[I].IsDelivery)
      OS << " (delivered)";
    OS << '\n';
  }
  return OS.str();
}
