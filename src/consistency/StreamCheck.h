//===- consistency/StreamCheck.h - Streaming Definition 6 checker -*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An online, windowed form of the Definition 6 check (consistency/
/// Check.h): trace entries are consumed incrementally in ticket order and
/// packet chains are *retired* — fully checked and forgotten — as soon as
/// their happens-before constraints resolve, so a multi-minute soak run
/// is verified with O(window) memory instead of an O(run) merged trace.
///
/// What is checked online (identical to the batch oracle's primary,
/// operational witness — the Figure 7 machine's own event sequence):
///
///  - extraction: each committed entry is matched against the structure's
///    fresh enabled events, growing the witness sequence exactly as
///    checkAgainstNes's operational extraction does;
///  - first occurrences k0 < k1 < ...: resolved from a per-event queue of
///    guard matches past the current FO frontier;
///  - per-chain single-configuration membership: an incremental prefix
///    mask per tree node (bit Ci set iff root..node is consecutive-related
///    under Ci), finalized at the leaf with the batch checker's exact
///    maximality rule; ledgered faults excuse leaves to prefix membership;
///  - FO bullet 3 and the AllBefore/AllAfter window conditions: evaluated
///    at retirement from per-entry vector clocks over switches, which
///    represent Definition 1's happens-before exactly (per-switch total
///    order plus packet-tree order, both of which respect ticket order).
///
/// Retirement is sound: a retired chain with nonempty membership cannot
/// fail conditions against *future* events (its membership indices are
/// all <= any future event index, and a future first occurrence can never
/// happen-before an already-retired entry because happens-before respects
/// ticket order). The one case ticket order does not cover — a first
/// occurrence resolving to an entry older than something already retired
/// — is detected and reported as inconclusive, never silently passed.
///
/// The verdict is three-valued: ok / violated / inconclusive, with
/// violated taking precedence over inconclusive. Inconclusive causes:
///
///  - window_exceeded: the window cap or quiet-horizon retirement cut a
///    constraint short (late child of a retired chain, excusal of a
///    retired entry, FO older than the retirement frontier, per-event
///    guard-match queue overflow);
///  - out_of_order: an entry committed behind the ticket frontier;
///  - trace_dropped: the producer lost trace events (reported by the
///    embedder via noteCause, e.g. from the engine's bounded obs ring);
///  - stream_backlog: the collector fell behind the data path and the
///    engine shed stream items at its per-shard buffer cap (reported by
///    the embedder via noteCause; see EngineConfig::StreamBufCap) — the
///    trace the checker saw is gappy, so no clean pass is possible;
///  - unsupported: the trace left the checkable regime (more than 64
///    configurations, or an occurred-event set outside the NES family).
///
/// Not replicated from the batch checker: the existential fallback over
/// all allowed event sequences (Definition 6 tries others when the
/// operational witness fails). A streaming "violated" therefore means
/// "the operational witness fails", which coincides with the batch
/// verdict on every trace an actual run substrate produces; the
/// differential test suite pins this.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_CONSISTENCY_STREAMCHECK_H
#define EVENTNET_CONSISTENCY_STREAMCHECK_H

#include "consistency/Check.h"
#include "consistency/Trace.h"
#include "nes/Nes.h"
#include "support/BitSet.h"
#include "topo/Topology.h"

#include <cstdint>
#include <deque>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace eventnet {
namespace consistency {

/// Three-valued streaming verdict. Violated > Inconclusive > Ok.
enum class StreamVerdict : uint8_t { Ok, Violated, Inconclusive };

/// Stable lowercase name: "ok", "violated", "inconclusive".
const char *streamVerdictName(StreamVerdict V);

struct StreamOptions {
  /// Hard cap on live (committed, unretired) trace entries. Exceeding it
  /// force-retires the quietest trees; any constraint that then lands on
  /// a retired entry degrades the verdict to inconclusive.
  size_t Window = 1 << 16;
  /// A tree with no new entries for this many tickets is retired. Must
  /// absorb fault-plan delays and scheduling jitter; too small splits
  /// in-flight chains (inconclusive), too large wastes window.
  uint64_t QuietHorizon = 1 << 13;
  /// Per-event cap on buffered guard matches awaiting FO resolution
  /// (matches of a not-yet-occurred event's guard).
  size_t GuardQueueCap = 4096;
};

struct StreamStats {
  uint64_t EntriesIngested = 0; ///< fed (incl. buffered and pruned)
  uint64_t EntriesChecked = 0;  ///< committed in ticket order
  uint64_t EntriesPruned = 0;   ///< ledgered-duplicate subtree entries
  uint64_t TreesRetired = 0;
  uint64_t ChainsRetired = 0;   ///< root-to-leaf paths finalized
  uint64_t EventsObserved = 0;  ///< witness sequence length
  uint64_t PeakWindow = 0;      ///< live-entry high-water mark
  uint64_t PeakResidentBytes = 0; ///< approx checker state high-water
};

struct StreamResult {
  StreamVerdict Verdict = StreamVerdict::Ok;
  /// Violation reason, or comma-joined inconclusive causes.
  std::string Reason;
  StreamStats Stats;

  bool ok() const { return Verdict == StreamVerdict::Ok; }
  bool violated() const { return Verdict == StreamVerdict::Violated; }
};

/// The streaming checker. Single-threaded: one collector feeds it; the
/// engine side hands entries over through per-shard buffers (see
/// engine::Engine::drainTraceStream).
///
/// Feed protocol: feedEntry() in any order (a reorder heap commits by
/// ticket); advance(W) commits everything with ticket <= W, where W is a
/// watermark no future entry can be below; feedExcuse(T) marks entry T a
/// legitimate chain leaf (ledgered drop/shed); finish() commits the
/// remainder and returns the final verdict.
class StreamChecker {
public:
  StreamChecker(const nes::Nes &N, const topo::Topology &Topo,
                StreamOptions O = StreamOptions());
  ~StreamChecker();

  StreamChecker(const StreamChecker &) = delete;
  StreamChecker &operator=(const StreamChecker &) = delete;

  /// Buffers one trace entry. \p Parent is the parent entry's ticket or
  /// -1 for a chain root; \p IsDup marks the root of a ledgered
  /// duplicate subtree (pruned, like the batch checker's FaultContext).
  void feedEntry(uint64_t Ticket, int64_t Parent, const netkat::Packet &Lp,
                 bool IsDelivery, bool IsDup = false);

  /// Entry \p Ticket may legitimately end its chain (ledgered drop or
  /// shed excused the hop that would have followed it). May arrive
  /// before or after the entry itself; an excusal of an already-retired
  /// entry is inconclusive.
  void feedExcuse(uint64_t Ticket);

  /// Commits every buffered entry with ticket <= \p Watermark. The
  /// caller guarantees no entry below the watermark is still in flight.
  void advance(uint64_t Watermark);

  /// Commits everything buffered, retires all live chains, and returns
  /// the final verdict. The checker is inert afterwards.
  StreamResult finish();

  /// Degrades the final verdict to inconclusive with \p Cause (unless a
  /// violation already won). Used by embedders for conditions the
  /// checker cannot see itself, e.g. "trace_dropped".
  void noteCause(const std::string &Cause);

  /// Like noteCause, but additionally marks the feed as gappy: entries
  /// are known to be missing (e.g. the producer shed stream items at a
  /// buffer cap), so from now on every would-be violation degrades to
  /// inconclusive(\p Cause) — a truncated chain or a shed FO witness
  /// can fake any violation class, and a violation must never be a
  /// false alarm. Violations recorded before this call stand.
  void noteGap(const std::string &Cause);

  /// Live verdict so far (retired state only; finish() is the total).
  StreamVerdict verdict() const { return CurVerdict; }
  const StreamStats &stats() const { return St; }

private:
  /// One committed, unretired trace entry. Nodes live in their tree's
  /// vector in insertion (ticket) order, so parents precede children.
  struct Node {
    uint64_t Ticket = 0;
    int32_t Parent = -1; ///< index into the owning tree's Nodes, -1 root
    uint32_t SwIdx = 0;  ///< dense switch index (VC component)
    uint32_t SwPos = 0;  ///< 1-based position in the per-switch order
    uint32_t Children = 0;
    int16_t ReqConfig = -1; ///< FO bullet 3: a chain through this node
                            ///< must be a member of this configuration
    bool Excused = false;
    bool IsDelivery = false;
    uint64_t PrefixMask = 0; ///< configs where root..this is
                             ///< consecutive-related
    uint64_t SeenMemberMask = 0; ///< filled during retirement
    netkat::Packet Lp;
    std::vector<uint32_t> VC;
  };

  struct Tree {
    uint64_t LastActivity = 0; ///< ticket of the newest entry
    std::vector<Node> Nodes;
  };

  /// One witness event with its first-occurrence data. KVC/KSwIdx/KSwPos
  /// are only valid when Usable (the FO entry was live at resolution).
  struct EventRec {
    unsigned EventId = 0;
    bool Resolved = false;
    bool Usable = false;
    uint64_t KTicket = 0;
    uint32_t KSwIdx = 0;
    uint32_t KSwPos = 0;
    std::vector<uint32_t> KVC;
  };

  struct GuardMatch {
    uint64_t Ticket;
  };

  struct PendItem {
    uint64_t Ticket;
    int64_t Parent;
    netkat::Packet Lp;
    bool IsDelivery;
    bool IsDup;
  };
  struct PendLater {
    bool operator()(const PendItem &A, const PendItem &B) const {
      return A.Ticket > B.Ticket;
    }
  };

  void commit(PendItem &It);
  void onFresh(unsigned EventId);
  void resolvePendingFOs();
  void extendMasksForNewConfig();
  uint64_t relatedMask(const netkat::Packet &From, const netkat::Packet &To,
                       uint64_t ParentMask) const;
  void retireTree(uint64_t RootTicket, bool Forced = false);
  void retireQuietTrees();
  void enforceWindow();
  void violate(std::string Reason);
  void inconclusive(const char *Cause);
  uint32_t denseSwitch(SwitchId Sw);
  void trackPeaks();
  uint64_t nodeBytes(const Node &Nd) const;

  const nes::Nes &N;
  const topo::Topology &Topo;
  StreamOptions O;

  // Reorder buffer: min-heap by ticket.
  std::priority_queue<PendItem, std::vector<PendItem>, PendLater> Heap;
  int64_t LastCommitted = -1;

  // Live trees, keyed by root ticket; ticket -> (root, node index).
  std::map<uint64_t, Tree> Live;
  std::unordered_map<uint64_t, std::pair<uint64_t, uint32_t>> NodeOf;

  // Ledgered-duplicate pruning: tickets whose subtree is excluded, with
  // an eviction queue so the set stays O(window).
  std::unordered_set<uint64_t> Pruned;
  std::deque<uint64_t> PrunedOrder;

  // Excusals that arrived before their entry.
  std::unordered_set<uint64_t> PendingExcuse;

  // Happens-before state: per-switch entry counts and last vector clock.
  std::unordered_map<SwitchId, uint32_t> SwDense;
  std::vector<uint64_t> SwCount;
  std::vector<std::vector<uint32_t>> SwLastVC;

  // The operational witness: occurred events, their configurations, and
  // per-event first-occurrence records.
  DenseBitSet Occurred;
  std::vector<const topo::Configuration *> Configs; // C0..Cn, <= 64
  std::vector<EventRec> EventRecs;
  uint64_t AllConfigMask = 1; // low Configs.size() bits

  // First-occurrence resolution. GuardQ[e] buffers committed tickets
  // matching event e's guard past the FO frontier; FOWanted[e] keeps the
  // queue collecting after e occurred but before its FO resolved.
  std::vector<std::deque<GuardMatch>> GuardQ;
  std::vector<bool> GuardQOverflow;
  std::vector<bool> FOWanted;
  int64_t FOFrontier = -1;        ///< ticket of the last resolved FO
  std::deque<unsigned> PendingFO; ///< witness indices awaiting their FO

  uint64_t MaxRetiredTicket = 0;
  bool AnyRetired = false;
  uint64_t CommitsSinceSweep = 0;

  // Incremental memory accounting (trackPeaks must be O(1)).
  uint64_t CurNodeBytes = 0;
  uint64_t GuardQTotal = 0;

  StreamVerdict CurVerdict = StreamVerdict::Ok;
  std::string ViolationReason;
  std::vector<std::string> Causes;
  /// noteGap: the feed is missing entries; violate() degrades to
  /// inconclusive(GapCause) from then on.
  bool Gappy = false;
  std::string GapCause;
  StreamStats St;
  bool Finished = false;
};

/// Replays a fully merged trace (plus an optional fault ledger) through a
/// StreamChecker — the differential-testing harness: on any trace the
/// batch checker can hold, this must agree with checkAgainstNes.
StreamResult streamCheckTrace(const NetworkTrace &Tr,
                              const topo::Topology &Topo, const nes::Nes &N,
                              const FaultContext *Faults = nullptr,
                              StreamOptions O = StreamOptions());

} // namespace consistency
} // namespace eventnet

#endif // EVENTNET_CONSISTENCY_STREAMCHECK_H
