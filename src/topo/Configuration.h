//===- topo/Configuration.h - Network configurations ------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A network configuration C (paper Section 2): a relation on located
/// packets composed of (a) the per-switch flow tables (forwarding between
/// ports within a switch) and (b) the topology's link behavior
/// (forwarding between switches). This is the object the consistency
/// checker quantifies over ("the packet is processed entirely by a single
/// configuration C").
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_TOPO_CONFIGURATION_H
#define EVENTNET_TOPO_CONFIGURATION_H

#include "flowtable/FlowTable.h"
#include "topo/Topology.h"

#include <map>
#include <string>
#include <vector>

namespace eventnet {
namespace topo {

/// A compiled network configuration: one flow table per switch.
class Configuration {
public:
  Configuration() = default;
  explicit Configuration(std::map<SwitchId, flowtable::Table> Tables)
      : Tables(std::move(Tables)) {}

  /// The table of switch \p Sw; an absent switch has an empty (drop-all)
  /// table.
  const flowtable::Table &tableFor(SwitchId Sw) const;

  void setTable(SwitchId Sw, flowtable::Table T) {
    Tables[Sw] = std::move(T);
  }

  const std::map<SwitchId, flowtable::Table> &tables() const {
    return Tables;
  }

  /// Total rule count across switches (the paper's per-app metric).
  size_t totalRules() const;

  /// One step of the relation C: a located packet at a switch ingress is
  /// forwarded by the switch table to egress locations; a located packet
  /// at a link source moves across the link. Both kinds of steps are
  /// included, matching the paper's convention that C also captures link
  /// behavior.
  std::vector<netkat::Packet> step(const Topology &Topo,
                                   const netkat::Packet &Lp) const;

  /// True if \p From -> \p To is a single step of the relation.
  bool related(const Topology &Topo, const netkat::Packet &From,
               const netkat::Packet &To) const;

  /// True if the sequence \p Trace is a *maximal* trace of this
  /// configuration: consecutive entries are related, and the final entry
  /// either was delivered to a host or has no successor (dropped).
  /// Maximality distinguishes "C drops this packet here" from "C would
  /// keep forwarding", which Definition 2 depends on.
  bool isCompleteTrace(const Topology &Topo,
                       const std::vector<netkat::Packet> &Trace) const;

  friend bool operator==(const Configuration &A, const Configuration &B) {
    return A.Tables == B.Tables;
  }

  std::string str() const;

private:
  std::map<SwitchId, flowtable::Table> Tables;
};

} // namespace topo
} // namespace eventnet

#endif // EVENTNET_TOPO_CONFIGURATION_H
