//===- topo/Topology.h - Switches, hosts, ports, links ----------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The physical network: switches with ports, unidirectional links
/// between switch ports (paper Section 2), and hosts attached to
/// host-facing ports. Hosts are packet sources/sinks; a packet emitted at
/// a host enters the network at the attachment port, and a packet
/// forwarded out of an attachment port is delivered to the host.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_TOPO_TOPOLOGY_H
#define EVENTNET_TOPO_TOPOLOGY_H

#include "support/Ids.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace eventnet {
namespace topo {

/// A physical network topology.
class Topology {
public:
  /// Registers a switch. Idempotent.
  void addSwitch(SwitchId Sw);

  /// Adds the unidirectional link \p Src -> \p Dst. Both endpoint
  /// switches are registered implicitly.
  void addLink(Location Src, Location Dst);

  /// Adds links in both directions between \p A and \p B.
  void addBiLink(Location A, Location B);

  /// Attaches host \p H at switch port \p At (registers the switch too).
  void attachHost(HostId H, Location At);

  /// Where does the link leaving \p From lead, if anywhere?
  std::optional<Location> linkFrom(Location From) const;

  /// The host attached at \p At, if any.
  std::optional<HostId> hostAt(Location At) const;

  /// Attachment location of host \p H; asserts the host exists.
  Location hostLoc(HostId H) const;

  /// True if \p At is a host-facing port.
  bool isHostPort(Location At) const { return hostAt(At).has_value(); }

  const std::set<SwitchId> &switches() const { return Switches; }
  const std::map<HostId, Location> &hosts() const { return Hosts; }
  const std::vector<std::pair<Location, Location>> &links() const {
    return Links;
  }

  /// Minimum number of links between two switches (BFS), or -1 if
  /// unreachable. Used by the ring experiments to report diameters.
  int switchDistance(SwitchId A, SwitchId B) const;

  std::string str() const;

private:
  std::set<SwitchId> Switches;
  std::vector<std::pair<Location, Location>> Links;
  std::map<Location, Location> LinkMap;
  std::map<HostId, Location> Hosts;
  std::map<Location, HostId> HostPorts;
};

} // namespace topo
} // namespace eventnet

#endif // EVENTNET_TOPO_TOPOLOGY_H
