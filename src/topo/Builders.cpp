//===- topo/Builders.cpp - The paper's topologies -------------------------===//

#include "topo/Builders.h"

#include <cassert>

using namespace eventnet;
using namespace eventnet::topo;

Topology topo::firewallTopology() {
  Topology T;
  T.addBiLink({1, 1}, {4, 1});
  T.attachHost(HostH1, {1, 2});
  T.attachHost(HostH4, {4, 2});
  return T;
}

Topology topo::fig2Topology() {
  // Figure 2: s1 and s2 each reach s4 (and each other) through s3's row:
  // concretely we wire s1-s2, s1-s3, s2-s4, s3-s4 which matches the
  // picture's 2x2 mesh. H1@s1, H2@s2.
  Topology T;
  T.addBiLink({1, 1}, {2, 1});
  T.addBiLink({1, 3}, {3, 1});
  T.addBiLink({2, 3}, {4, 1});
  T.addBiLink({3, 3}, {4, 3});
  T.attachHost(HostH1, {1, 2});
  T.attachHost(HostH2, {2, 2});
  return T;
}

Topology topo::starTopology() {
  Topology T;
  T.addBiLink({1, 1}, {4, 1});
  T.addBiLink({2, 1}, {4, 3});
  T.addBiLink({3, 1}, {4, 4});
  T.attachHost(HostH1, {1, 2});
  T.attachHost(HostH2, {2, 2});
  T.attachHost(HostH3, {3, 2});
  T.attachHost(HostH4, {4, 2});
  return T;
}

Topology topo::ringTopology(unsigned NumSwitches, unsigned Diameter) {
  assert(NumSwitches >= 3 && "ring needs at least three switches");
  assert(Diameter >= 1 && Diameter < NumSwitches &&
         "diameter must be between 1 and NumSwitches-1");
  Topology T;
  for (unsigned I = 1; I <= NumSwitches; ++I) {
    unsigned Next = (I % NumSwitches) + 1;
    // Port 1: clockwise out; port 2: counterclockwise out (= clockwise in
    // on the neighbor).
    T.addLink({I, 1}, {Next, 2});
    T.addLink({Next, 2}, {I, 1});
  }
  T.attachHost(HostH1, {1, 3});
  T.attachHost(HostH2, {1 + Diameter, 3});
  return T;
}

Topology topo::fatTreeTopology(unsigned K) {
  assert(K >= 2 && K % 2 == 0 && "fat-tree arity must be even");
  unsigned Half = K / 2;
  unsigned NumCore = Half * Half;
  Topology T;

  // Switch numbering: core 1 .. NumCore; per pod p (0-based),
  // aggregation NumCore + p*K + 1 .. + Half, edge the next Half ids.
  auto CoreSw = [&](unsigned I) { return I + 1; };
  auto AggSw = [&](unsigned Pod, unsigned I) {
    return NumCore + Pod * K + I + 1;
  };
  auto EdgeSw = [&](unsigned Pod, unsigned I) {
    return NumCore + Pod * K + Half + I + 1;
  };

  for (unsigned Pod = 0; Pod != K; ++Pod) {
    for (unsigned A = 0; A != Half; ++A) {
      // Aggregation ports 1..Half go up to cores, Half+1..K down to edges.
      // Core j's port Pod+1 serves pod Pod; aggregation A owns cores
      // A*Half .. A*Half+Half-1.
      for (unsigned J = 0; J != Half; ++J)
        T.addBiLink({AggSw(Pod, A), J + 1},
                    {CoreSw(A * Half + J), Pod + 1});
      for (unsigned E = 0; E != Half; ++E)
        T.addBiLink({AggSw(Pod, A), Half + E + 1}, {EdgeSw(Pod, E), A + 1});
    }
    // Edge ports 1..Half go up (wired above); Half+1..K face hosts.
    for (unsigned E = 0; E != Half; ++E)
      for (unsigned H = 0; H != Half; ++H) {
        HostId Host = Pod * Half * Half + E * Half + H + 1;
        T.attachHost(Host, {EdgeSw(Pod, E), Half + H + 1});
      }
  }
  return T;
}
