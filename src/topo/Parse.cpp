//===- topo/Parse.cpp - Topology description files ------------------------===//

#include "topo/Parse.h"

#include <sstream>

using namespace eventnet;
using namespace eventnet::topo;

namespace {

/// Parses "n:m" into a Location.
bool parseLoc(const std::string &Tok, Location &Out) {
  size_t Colon = Tok.find(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Tok.size())
    return false;
  for (size_t I = 0; I != Tok.size(); ++I)
    if (I != Colon && !isdigit(static_cast<unsigned char>(Tok[I])))
      return false;
  Out.Sw = static_cast<SwitchId>(std::stoul(Tok.substr(0, Colon)));
  Out.Pt = static_cast<PortId>(std::stoul(Tok.substr(Colon + 1)));
  return true;
}

bool parseNum(const std::string &Tok, uint32_t &Out) {
  if (Tok.empty())
    return false;
  for (char C : Tok)
    if (!isdigit(static_cast<unsigned char>(C)))
      return false;
  Out = static_cast<uint32_t>(std::stoul(Tok));
  return true;
}

} // namespace

api::Result<Topology> topo::parseTopology(const std::string &Source) {
  Topology Topo;
  std::istringstream In(Source);
  std::string Line;
  unsigned LineNo = 0;

  auto Fail = [&](const std::string &Msg) {
    return api::Result<Topology>(api::Status::error(
        api::Code::TopoError,
        "line " + std::to_string(LineNo) + ": " + Msg));
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    // Strip comments and tokenize.
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::istringstream LS(Line);
    std::vector<std::string> Toks;
    std::string Tok;
    while (LS >> Tok)
      Toks.push_back(Tok);
    if (Toks.empty())
      continue;

    if (Toks[0] == "switch") {
      uint32_t Sw;
      if (Toks.size() != 2 || !parseNum(Toks[1], Sw))
        return Fail("expected: switch <id>");
      Topo.addSwitch(Sw);
      continue;
    }
    if (Toks[0] == "host") {
      uint32_t H;
      Location At;
      if (Toks.size() != 4 || !parseNum(Toks[1], H) || Toks[2] != "at" ||
          !parseLoc(Toks[3], At))
        return Fail("expected: host <id> at <sw>:<pt>");
      Topo.attachHost(H, At);
      continue;
    }
    if (Toks[0] == "link") {
      Location A, B;
      if (Toks.size() != 4 || !parseLoc(Toks[1], A) || !parseLoc(Toks[3], B))
        return Fail("expected: link <sw>:<pt> (- | ->) <sw>:<pt>");
      if (Toks[2] == "-")
        Topo.addBiLink(A, B);
      else if (Toks[2] == "->")
        Topo.addLink(A, B);
      else
        return Fail("expected '-' (bidirectional) or '->' (unidirectional)");
      continue;
    }
    return Fail("unknown directive '" + Toks[0] + "'");
  }

  return Topo;
}
