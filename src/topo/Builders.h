//===- topo/Builders.h - The paper's topologies -----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the topologies used in the paper's examples and
/// evaluation (Figures 1, 2, 8, and the ring of Section 5.2). Port
/// conventions follow the Figure 9 programs:
///
///   - Star (Figure 8): switch 4 is the hub. Links (1:1)<->(4:1),
///     (2:1)<->(4:3), (3:1)<->(4:4). Hosts H1@1:2, H2@2:2, H3@3:2,
///     H4@4:2.
///   - Firewall (Figures 1, 8a/8d): the 2-switch slice of the star:
///     switches 1 and 4, link (1:1)<->(4:1), hosts H1@1:2, H4@4:2.
///   - Ring (Section 5.2): N switches 1..N in a cycle; port 1 is the
///     clockwise neighbor, port 2 the counterclockwise one, port 3 a
///     host-facing port. H1 sits at switch 1 and H2 at switch 1 +
///     diameter, so the clockwise distance between the hosts is the
///     requested diameter.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_TOPO_BUILDERS_H
#define EVENTNET_TOPO_BUILDERS_H

#include "topo/Topology.h"

namespace eventnet {
namespace topo {

/// Canonical host numbers used by the examples.
inline constexpr HostId HostH1 = 1;
inline constexpr HostId HostH2 = 2;
inline constexpr HostId HostH3 = 3;
inline constexpr HostId HostH4 = 4;

/// Figure 1 / Figure 8(a,d): H1 - s1 - s4 - H4.
Topology firewallTopology();

/// Figure 2: four switches s1..s4 (s1-s2, s1-s4 ... see paper) with hosts
/// H1@s1 and H2@s2; used by the Section 2 worked example.
Topology fig2Topology();

/// Figure 8(b,c,e): the star with hub s4 and spokes s1..s3.
Topology starTopology();

/// Section 5.2 ring with \p NumSwitches >= 3 switches; hosts H1 and H2
/// sit \p Diameter hops apart clockwise (1 <= Diameter < NumSwitches).
Topology ringTopology(unsigned NumSwitches, unsigned Diameter);

/// A k-ary fat-tree (Al-Fares et al., SIGCOMM 2008) for the engine's
/// scale benchmarks; \p K must be even and >= 2. K pods of K/2 edge and
/// K/2 aggregation switches plus (K/2)^2 core switches; one host per
/// edge-switch port, (K/2)^2 * K hosts total, numbered from 1 in pod
/// order. Switch numbering: cores first, then per pod aggregation then
/// edge. Every host port is the edge switch's port K/2+1 .. K.
Topology fatTreeTopology(unsigned K);

} // namespace topo
} // namespace eventnet

#endif // EVENTNET_TOPO_BUILDERS_H
