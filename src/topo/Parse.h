//===- topo/Parse.h - Topology description files ----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text format for describing topologies, used by the eventnetc
/// command-line compiler (the stand-in for the paper's Mininet script
/// generator):
///
///   # comments run to end of line
///   switch 1            # optional: switches are implied by links/hosts
///   host 1 at 1:2       # host 1 attached at switch 1 port 2
///   link 1:1 - 4:1      # bidirectional link
///   link 2:1 -> 3:2     # unidirectional link
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_TOPO_PARSE_H
#define EVENTNET_TOPO_PARSE_H

#include "api/Status.h"
#include "topo/Topology.h"

#include <string>

namespace eventnet {
namespace topo {

/// Parses the textual topology format described in the file header.
/// Failures carry api::Code::TopoError with a "line N: message"
/// diagnostic.
api::Result<Topology> parseTopology(const std::string &Source);

} // namespace topo
} // namespace eventnet

#endif // EVENTNET_TOPO_PARSE_H
