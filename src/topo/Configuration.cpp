//===- topo/Configuration.cpp - Network configurations --------------------===//

#include "topo/Configuration.h"

#include <sstream>

using namespace eventnet;
using namespace eventnet::topo;
using eventnet::netkat::Packet;

const flowtable::Table &Configuration::tableFor(SwitchId Sw) const {
  static const flowtable::Table Empty;
  auto It = Tables.find(Sw);
  if (It == Tables.end())
    return Empty;
  return It->second;
}

size_t Configuration::totalRules() const {
  size_t N = 0;
  for (const auto &[Sw, T] : Tables)
    N += T.size();
  return N;
}

std::vector<Packet> Configuration::step(const Topology &Topo,
                                        const Packet &Lp) const {
  // The paper's C is the union of switch processing and link behavior,
  // so a located packet at a port that is *both* an arrival point and a
  // link source (every port of a bidirectional link) relates to the
  // table outputs and to the link target. Traces choose the applicable
  // branch; reachability closures must follow both.
  std::vector<Packet> Out = tableFor(Lp.sw()).apply(Lp);
  if (auto Dst = Topo.linkFrom(Lp.loc())) {
    Packet Moved = Lp;
    Moved.setLoc(*Dst);
    Out.push_back(std::move(Moved));
  }
  return Out;
}

bool Configuration::related(const Topology &Topo, const Packet &From,
                            const Packet &To) const {
  // Link step.
  if (auto Dst = Topo.linkFrom(From.loc())) {
    Packet Moved = From;
    Moved.setLoc(*Dst);
    if (Moved == To)
      return true;
  }
  // Table step.
  for (const Packet &Q : tableFor(From.sw()).apply(From))
    if (Q == To)
      return true;
  return false;
}

bool Configuration::isCompleteTrace(
    const Topology &Topo, const std::vector<Packet> &Trace) const {
  if (Trace.empty())
    return false;
  for (size_t I = 0; I + 1 < Trace.size(); ++I)
    if (!related(Topo, Trace[I], Trace[I + 1]))
      return false;

  // Maximality. A packet delivered to a host has reached a host-facing
  // port *as an egress* (i.e. the previous step was a table step, not the
  // host's own injection). The first trace entry is the host injection at
  // the same kind of port, so a single-entry trace at a host port is
  // complete only if the table drops it.
  const Packet &Last = Trace.back();
  bool Delivered =
      Trace.size() > 1 && Topo.isHostPort(Last.loc()) &&
      !Topo.linkFrom(Last.loc()); // host ports have no outgoing link
  if (Delivered)
    return true;
  return step(Topo, Last).empty();
}

std::string Configuration::str() const {
  std::ostringstream OS;
  for (const auto &[Sw, T] : Tables) {
    OS << "switch " << Sw << ":\n";
    for (const auto &R : T.rules())
      OS << "  " << R.str() << '\n';
  }
  return OS.str();
}
