//===- topo/Topology.cpp - Switches, hosts, ports, links ------------------===//

#include "topo/Topology.h"

#include <cassert>
#include <deque>
#include <sstream>

using namespace eventnet;
using namespace eventnet::topo;

void Topology::addSwitch(SwitchId Sw) { Switches.insert(Sw); }

void Topology::addLink(Location Src, Location Dst) {
  assert(!LinkMap.count(Src) && "port already has an outgoing link");
  Switches.insert(Src.Sw);
  Switches.insert(Dst.Sw);
  Links.push_back({Src, Dst});
  LinkMap[Src] = Dst;
}

void Topology::addBiLink(Location A, Location B) {
  addLink(A, B);
  addLink(B, A);
}

void Topology::attachHost(HostId H, Location At) {
  assert(!Hosts.count(H) && "host already attached");
  assert(!HostPorts.count(At) && "port already hosts a host");
  Switches.insert(At.Sw);
  Hosts[H] = At;
  HostPorts[At] = H;
}

std::optional<Location> Topology::linkFrom(Location From) const {
  auto It = LinkMap.find(From);
  if (It == LinkMap.end())
    return std::nullopt;
  return It->second;
}

std::optional<HostId> Topology::hostAt(Location At) const {
  auto It = HostPorts.find(At);
  if (It == HostPorts.end())
    return std::nullopt;
  return It->second;
}

Location Topology::hostLoc(HostId H) const {
  auto It = Hosts.find(H);
  assert(It != Hosts.end() && "unknown host");
  return It->second;
}

int Topology::switchDistance(SwitchId A, SwitchId B) const {
  if (A == B)
    return 0;
  std::map<SwitchId, int> Dist{{A, 0}};
  std::deque<SwitchId> Queue{A};
  while (!Queue.empty()) {
    SwitchId Cur = Queue.front();
    Queue.pop_front();
    for (const auto &[Src, Dst] : Links) {
      if (Src.Sw != Cur || Dist.count(Dst.Sw))
        continue;
      Dist[Dst.Sw] = Dist[Cur] + 1;
      if (Dst.Sw == B)
        return Dist[Dst.Sw];
      Queue.push_back(Dst.Sw);
    }
  }
  return -1;
}

std::string Topology::str() const {
  std::ostringstream OS;
  OS << "switches:";
  for (SwitchId Sw : Switches)
    OS << ' ' << Sw;
  OS << "\nhosts:";
  for (const auto &[H, L] : Hosts)
    OS << " H" << H << "@" << L.Sw << ':' << L.Pt;
  OS << "\nlinks:";
  for (const auto &[Src, Dst] : Links)
    OS << " (" << Src.Sw << ':' << Src.Pt << ")->(" << Dst.Sw << ':' << Dst.Pt
       << ')';
  OS << '\n';
  return OS.str();
}
