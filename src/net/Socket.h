//===- net/Socket.h - Nonblocking socket helpers ----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX socket helpers for the net backend: RAII fd ownership and
/// the handful of nonblocking setup calls the server and load generator
/// need. Everything returns plain fds (or -1 with an error string) —
/// the event-loop layers above own all policy.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NET_SOCKET_H
#define EVENTNET_NET_SOCKET_H

#include <cstdint>
#include <string>

namespace eventnet {
namespace net {

/// Owns one file descriptor; closes it on destruction.
class Fd {
public:
  Fd() = default;
  explicit Fd(int Raw) : Raw(Raw) {}
  ~Fd() { reset(); }

  Fd(const Fd &) = delete;
  Fd &operator=(const Fd &) = delete;
  Fd(Fd &&O) noexcept : Raw(O.Raw) { O.Raw = -1; }
  Fd &operator=(Fd &&O) noexcept {
    if (this != &O) {
      reset();
      Raw = O.Raw;
      O.Raw = -1;
    }
    return *this;
  }

  int get() const { return Raw; }
  bool valid() const { return Raw >= 0; }
  /// Closes the held fd (if any).
  void reset(int NewRaw = -1);
  /// Releases ownership without closing.
  int release() {
    int R = Raw;
    Raw = -1;
    return R;
  }

private:
  int Raw = -1;
};

/// Puts \p Fd into nonblocking mode.
bool setNonBlocking(int Fd);

/// Creates a nonblocking TCP listener bound to \p Addr:\p Port
/// (SO_REUSEADDR, TCP_NODELAY inherited per-connection at accept).
/// \p Port 0 binds an ephemeral port (query with localPort). Returns
/// -1 and fills \p Err on failure.
int listenTcp(const std::string &Addr, uint16_t Port, std::string &Err);

/// Creates a nonblocking UDP socket bound to \p Addr:\p Port.
int bindUdp(const std::string &Addr, uint16_t Port, std::string &Err);

/// Starts a nonblocking TCP connect to \p Addr:\p Port. On return the
/// connect is either complete or in progress (poll for writability).
/// Returns -1 and fills \p Err on immediate failure.
int connectTcp(const std::string &Addr, uint16_t Port, std::string &Err);

/// Creates a nonblocking UDP socket "connected" to \p Addr:\p Port
/// (datagrams go via send/recv, and the kernel filters the peer).
int connectUdp(const std::string &Addr, uint16_t Port, std::string &Err);

/// The locally bound port of \p Fd (0 on error) — how callers discover
/// an ephemeral bind.
uint16_t localPort(int Fd);

/// Raises RLIMIT_NOFILE to its hard limit (best effort) and returns the
/// resulting soft limit — thousands of concurrent connections need more
/// than the usual 1024-fd default.
uint64_t raiseFdLimit();

/// Disables Nagle on a TCP socket (best effort).
void setNoDelay(int Fd);

} // namespace net
} // namespace eventnet

#endif // EVENTNET_NET_SOCKET_H
