//===- net/Poller.h - Readiness multiplexer (epoll / poll) ------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The readiness backend of the net event loops: epoll where the
/// platform has it (Linux), a portable poll(2) fallback elsewhere. One
/// loop thread owns a Poller; fds are registered with an opaque u64
/// token that comes back on every readiness event, so the loop never
/// keeps an fd-to-object side table in the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NET_POLLER_H
#define EVENTNET_NET_POLLER_H

#include <cstdint>
#include <vector>

#if defined(__linux__)
#define EVENTNET_HAVE_EPOLL 1
#else
#define EVENTNET_HAVE_EPOLL 0
#endif

namespace eventnet {
namespace net {

/// A readiness event: the registered token plus what the fd can do.
struct Ready {
  uint64_t Token = 0;
  bool Readable = false;
  bool Writable = false;
  /// Error or hangup; the owner should tear the fd down after draining.
  bool Error = false;
};

class Poller {
public:
  Poller();
  ~Poller();

  Poller(const Poller &) = delete;
  Poller &operator=(const Poller &) = delete;

  bool valid() const;
  /// "epoll" or "poll" — which backend this build selected.
  static const char *backendName();

  /// Registers \p Fd with interest in reads and/or writes.
  bool add(int Fd, uint64_t Token, bool Read, bool Write);
  /// Updates interest (and token) for a registered fd.
  bool mod(int Fd, uint64_t Token, bool Read, bool Write);
  /// Deregisters \p Fd.
  void del(int Fd);

  /// Blocks up to \p TimeoutMs (-1 = forever, 0 = poll) and appends
  /// ready events to \p Out (cleared first). Returns the event count,
  /// 0 on timeout, -1 on error.
  int wait(std::vector<Ready> &Out, int TimeoutMs);

private:
#if EVENTNET_HAVE_EPOLL
  int Ep = -1;
#else
  struct Entry {
    int Fd = -1;
    uint64_t Token = 0;
    bool Read = false;
    bool Write = false;
  };
  std::vector<Entry> Entries; ///< registration order; linear del is fine
                              ///< at fallback scale
#endif
};

} // namespace net
} // namespace eventnet

#endif // EVENTNET_NET_POLLER_H
