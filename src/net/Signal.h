//===- net/Signal.h - Graceful-shutdown signal plumbing ---------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One process-wide shutdown flag and the SIGINT/SIGTERM handlers that
/// set it. The handlers do nothing but an atomic store (async-signal-
/// safe); the serving loops poll the flag and drain gracefully — the
/// run report and the drop audit are still emitted on Ctrl-C.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NET_SIGNAL_H
#define EVENTNET_NET_SIGNAL_H

#include <atomic>

namespace eventnet {
namespace net {

/// The process-wide shutdown request. Readable from any thread; set by
/// the installed handlers (or by tests, directly).
std::atomic<bool> &shutdownRequested();

/// Installs SIGINT and SIGTERM handlers that set shutdownRequested().
/// Idempotent. A second signal after the first restores the default
/// disposition, so a stuck drain can still be killed with one more ^C.
void installShutdownHandlers();

} // namespace net
} // namespace eventnet

#endif // EVENTNET_NET_SIGNAL_H
