//===- net/Loadgen.h - Multi-connection open-loop load generator *- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the net backend: one poller-driven thread that
/// emulates up to tens of thousands of client hosts over loopback or a
/// real NIC. Each connection handshakes (Hello/HelloAck gives it a
/// source host, a destination host, and a conn id), then streams echo
/// requests open-loop in bursts, fences each workload phase with a
/// Barrier, samples round-trip times into an obs histogram, and
/// validates the echoed deliveries (every reply's sequence number must
/// have been sent; replies and request deliveries are counted per
/// kind). TCP by default; --udp swaps every connection for a connected
/// UDP socket speaking the same framing, one-or-more whole frames per
/// datagram.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NET_LOADGEN_H
#define EVENTNET_NET_LOADGEN_H

#include "obs/Histogram.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace eventnet {
namespace net {

struct LoadgenConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  /// Concurrent connections (client hosts emulated).
  unsigned Connections = 8;
  /// UDP instead of TCP (one connected socket per connection).
  bool Udp = false;
  /// Echo requests each connection sends, total across all phases.
  uint64_t FramesPerConn = 128;
  /// Frames serialized per connection per loop pass (open-loop burst).
  unsigned Burst = 32;
  /// Barrier-fenced rounds the workload is split into.
  unsigned Phases = 1;
  /// Workload seed: varies each connection's sequence offsets so two
  /// runs exercise different interleavings deterministically.
  uint64_t Seed = 1;
  /// Sample every Nth frame's round trip (1 = all; 0 disables).
  unsigned RttSampleEvery = 16;
  /// Abort (TimedOut) if the run has not finished within this budget.
  unsigned TimeoutMs = 60000;
  /// Per-run budget for establishing connections. A refused or failed
  /// connect is retried with exponential backoff (25 ms doubling to a
  /// 800 ms cap) until this deadline; only then does the connection
  /// count as ConnectFailed. Absorbs the race of starting the load
  /// generator before the server's listener is up.
  unsigned ConnectTimeoutMs = 5000;
};

struct LoadgenStats {
  uint64_t Connected = 0;
  uint64_t ConnectFailed = 0;  ///< gave up after the connect budget
  uint64_t ConnectRetries = 0; ///< backoff retries taken (any outcome)
  uint64_t InjectsSent = 0; ///< echo requests sent
  uint64_t FramesSent = 0;  ///< all frames (injects + barriers + byes...)
  uint64_t Delivers = 0;    ///< Deliver frames received (any kind)
  uint64_t Replies = 0;     ///< of those, echo replies (KindReply)
  uint64_t BarrierAcks = 0;
  uint64_t SeqMismatches = 0; ///< replies whose seq was never sent
  uint64_t ProtocolErrors = 0;
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;
  double ElapsedSec = 0;
  bool TimedOut = false;
  /// Round-trip samples, nanoseconds.
  obs::HistogramSnapshot RttNs;

  bool ok() const {
    return !TimedOut && ProtocolErrors == 0 && SeqMismatches == 0 &&
           ConnectFailed == 0;
  }
};

/// Runs the workload to completion (or \p Stop / timeout) and returns
/// the aggregate stats. Blocking; single-threaded.
LoadgenStats runLoadgen(const LoadgenConfig &C,
                        const std::atomic<bool> *Stop = nullptr);

} // namespace net
} // namespace eventnet

#endif // EVENTNET_NET_LOADGEN_H
