//===- net/Socket.cpp - Nonblocking socket helpers ------------------------===//

#include "net/Socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace eventnet;
using namespace eventnet::net;

void Fd::reset(int NewRaw) {
  if (Raw >= 0)
    ::close(Raw);
  Raw = NewRaw;
}

bool net::setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  return ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

void net::setNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

namespace {

bool fillAddr(const std::string &Addr, uint16_t Port, sockaddr_in &Sa,
              std::string &Err) {
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(Port);
  if (Addr.empty() || Addr == "0.0.0.0") {
    Sa.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (::inet_pton(AF_INET, Addr.c_str(), &Sa.sin_addr) != 1) {
    Err = "bad IPv4 address: " + Addr;
    return false;
  }
  return true;
}

int boundSocket(int Type, const std::string &Addr, uint16_t Port,
                std::string &Err) {
  sockaddr_in Sa;
  if (!fillAddr(Addr, Port, Sa, Err))
    return -1;
  int S = ::socket(AF_INET, Type, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int One = 1;
  ::setsockopt(S, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(S, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0) {
    Err = std::string("bind: ") + std::strerror(errno);
    ::close(S);
    return -1;
  }
  if (!setNonBlocking(S)) {
    Err = std::string("fcntl: ") + std::strerror(errno);
    ::close(S);
    return -1;
  }
  return S;
}

} // namespace

int net::listenTcp(const std::string &Addr, uint16_t Port, std::string &Err) {
  int S = boundSocket(SOCK_STREAM, Addr, Port, Err);
  if (S < 0)
    return -1;
  if (::listen(S, SOMAXCONN) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(S);
    return -1;
  }
  return S;
}

int net::bindUdp(const std::string &Addr, uint16_t Port, std::string &Err) {
  return boundSocket(SOCK_DGRAM, Addr, Port, Err);
}

namespace {

int connectedSocket(int Type, const std::string &Addr, uint16_t Port,
                    std::string &Err) {
  sockaddr_in Sa;
  if (!fillAddr(Addr.empty() ? "127.0.0.1" : Addr, Port, Sa, Err))
    return -1;
  int S = ::socket(AF_INET, Type, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (!setNonBlocking(S)) {
    Err = std::string("fcntl: ") + std::strerror(errno);
    ::close(S);
    return -1;
  }
  if (::connect(S, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0 &&
      errno != EINPROGRESS) {
    Err = std::string("connect: ") + std::strerror(errno);
    ::close(S);
    return -1;
  }
  return S;
}

} // namespace

int net::connectTcp(const std::string &Addr, uint16_t Port, std::string &Err) {
  int S = connectedSocket(SOCK_STREAM, Addr, Port, Err);
  if (S >= 0)
    setNoDelay(S);
  return S;
}

int net::connectUdp(const std::string &Addr, uint16_t Port, std::string &Err) {
  return connectedSocket(SOCK_DGRAM, Addr, Port, Err);
}

uint64_t net::raiseFdLimit() {
  rlimit R;
  if (::getrlimit(RLIMIT_NOFILE, &R) != 0)
    return 0;
  if (R.rlim_cur < R.rlim_max) {
    rlimit N = R;
    N.rlim_cur = R.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &N) == 0)
      return static_cast<uint64_t>(N.rlim_cur);
  }
  return static_cast<uint64_t>(R.rlim_cur);
}

uint16_t net::localPort(int Fd) {
  sockaddr_in Sa;
  socklen_t Len = sizeof(Sa);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Sa), &Len) != 0)
    return 0;
  return ntohs(Sa.sin_port);
}
