//===- net/Poller.cpp - Readiness multiplexer (epoll / poll) --------------===//

#include "net/Poller.h"

#if EVENTNET_HAVE_EPOLL
#include <sys/epoll.h>
#include <unistd.h>
#else
#include <poll.h>
#endif

using namespace eventnet;
using namespace eventnet::net;

#if EVENTNET_HAVE_EPOLL

Poller::Poller() { Ep = ::epoll_create1(0); }

Poller::~Poller() {
  if (Ep >= 0)
    ::close(Ep);
}

bool Poller::valid() const { return Ep >= 0; }

const char *Poller::backendName() { return "epoll"; }

namespace {
epoll_event makeEvent(uint64_t Token, bool Read, bool Write) {
  epoll_event Ev;
  Ev.events = 0;
  if (Read)
    Ev.events |= EPOLLIN;
  if (Write)
    Ev.events |= EPOLLOUT;
  Ev.data.u64 = Token;
  return Ev;
}
} // namespace

bool Poller::add(int Fd, uint64_t Token, bool Read, bool Write) {
  epoll_event Ev = makeEvent(Token, Read, Write);
  return ::epoll_ctl(Ep, EPOLL_CTL_ADD, Fd, &Ev) == 0;
}

bool Poller::mod(int Fd, uint64_t Token, bool Read, bool Write) {
  epoll_event Ev = makeEvent(Token, Read, Write);
  return ::epoll_ctl(Ep, EPOLL_CTL_MOD, Fd, &Ev) == 0;
}

void Poller::del(int Fd) { ::epoll_ctl(Ep, EPOLL_CTL_DEL, Fd, nullptr); }

int Poller::wait(std::vector<Ready> &Out, int TimeoutMs) {
  Out.clear();
  epoll_event Evs[256];
  int N = ::epoll_wait(Ep, Evs, 256, TimeoutMs);
  if (N <= 0)
    return N;
  Out.reserve(static_cast<size_t>(N));
  for (int I = 0; I != N; ++I) {
    Ready R;
    R.Token = Evs[I].data.u64;
    R.Readable = (Evs[I].events & EPOLLIN) != 0;
    R.Writable = (Evs[I].events & EPOLLOUT) != 0;
    R.Error = (Evs[I].events & (EPOLLERR | EPOLLHUP)) != 0;
    Out.push_back(R);
  }
  return N;
}

#else // poll(2) fallback

Poller::Poller() = default;
Poller::~Poller() = default;

bool Poller::valid() const { return true; }

const char *Poller::backendName() { return "poll"; }

bool Poller::add(int Fd, uint64_t Token, bool Read, bool Write) {
  Entries.push_back({Fd, Token, Read, Write});
  return true;
}

bool Poller::mod(int Fd, uint64_t Token, bool Read, bool Write) {
  for (Entry &E : Entries)
    if (E.Fd == Fd) {
      E.Token = Token;
      E.Read = Read;
      E.Write = Write;
      return true;
    }
  return false;
}

void Poller::del(int Fd) {
  for (size_t I = 0; I != Entries.size(); ++I)
    if (Entries[I].Fd == Fd) {
      Entries[I] = Entries.back();
      Entries.pop_back();
      return;
    }
}

int Poller::wait(std::vector<Ready> &Out, int TimeoutMs) {
  Out.clear();
  std::vector<pollfd> Pfds;
  Pfds.reserve(Entries.size());
  for (const Entry &E : Entries) {
    pollfd P;
    P.fd = E.Fd;
    P.events = 0;
    if (E.Read)
      P.events |= POLLIN;
    if (E.Write)
      P.events |= POLLOUT;
    P.revents = 0;
    Pfds.push_back(P);
  }
  int N = ::poll(Pfds.data(), Pfds.size(), TimeoutMs);
  if (N <= 0)
    return N;
  for (size_t I = 0; I != Pfds.size(); ++I) {
    if (!Pfds[I].revents)
      continue;
    Ready R;
    R.Token = Entries[I].Token;
    R.Readable = (Pfds[I].revents & POLLIN) != 0;
    R.Writable = (Pfds[I].revents & POLLOUT) != 0;
    R.Error = (Pfds[I].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    Out.push_back(R);
  }
  return N;
}

#endif
