//===- net/Loadgen.cpp - Multi-connection open-loop load generator --------===//

#include "net/Loadgen.h"

#include "net/Poller.h"
#include "net/Session.h"
#include "net/Socket.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace eventnet;
using namespace eventnet::net;
using sim::WireFrame;

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class Loadgen : public Session::FrameHandler {
public:
  Loadgen(const LoadgenConfig &Cfg, const std::atomic<bool> *Stop)
      : C(Cfg), Stop(Stop) {
    if (C.Connections == 0)
      C.Connections = 1;
    if (C.Phases == 0)
      C.Phases = 1;
    if (C.Burst == 0)
      C.Burst = 1;
  }

  LoadgenStats run();

private:
  struct Client {
    Fd Sock;
    std::unique_ptr<Session> S;
    HostId From = 0;
    HostId To = 0;
    uint64_t Sent = 0;        ///< injects sent (also the seq counter)
    uint64_t PhaseTarget = 0; ///< cumulative inject target this phase
    unsigned ConnectAttempts = 0; ///< failed attempts so far
    int64_t NextConnectNs = 0;    ///< earliest time for the next attempt
    bool Connected = false;
    bool Handshaken = false;
    bool BarrierSent = false;
    bool BarrierAcked = false;
    int64_t BarrierSentNs = 0; ///< last fence post (UDP retransmission)
    bool ByeSent = false;
    bool Dead = false;
    bool WriteArmed = false;
    /// (seq, send-time) of RTT-sampled frames, oldest first.
    std::vector<std::pair<uint64_t, int64_t>> RttPending;
  };

  bool onFrame(Session &S, const WireFrame &F) override;

  void startConnect(size_t Idx);
  bool scheduleRetry(size_t Idx);
  void retryPending();
  void drive();
  void advancePhase();
  void flushClient(size_t Idx);
  void teardown(size_t Idx);
  void handleEvent(const Ready &Ev);
  uint64_t phaseTarget(unsigned Ph) const {
    return C.FramesPerConn * (Ph + 1) / C.Phases;
  }

  LoadgenConfig C;
  const std::atomic<bool> *Stop;
  LoadgenStats St;
  Poller Poll;
  obs::LogHistogram Rtt;
  std::vector<Client> Clients;
  unsigned Phase = 0;
  bool AllPhasesDone = false;
  bool DidWork = false;
  int64_t ConnectDeadlineNs = 0;
};

void Loadgen::startConnect(size_t Idx) {
  Client &Cl = Clients[Idx];
  std::string Err;
  int Fd = C.Udp ? connectUdp(C.Host, C.Port, Err)
                 : connectTcp(C.Host, C.Port, Err);
  if (Fd < 0) {
    if (!scheduleRetry(Idx)) {
      ++St.ConnectFailed;
      Cl.Dead = true;
    }
    return;
  }
  Cl.Sock.reset(Fd);
  SessionConfig SC;
  SC.Role = SessionRole::Client;
  SC.Overload = engine::OverloadPolicy::Block;
  Cl.S = std::make_unique<Session>(Idx, SC);
  Cl.PhaseTarget = phaseTarget(0);
  // Write interest reports connect completion (TCP); UDP is ready now.
  Poll.add(Fd, Idx, /*Read=*/true, /*Write=*/true);
  Cl.WriteArmed = true;
}

/// One connect attempt failed (immediately, or asynchronously via
/// SO_ERROR). Backs the client off for another try — 25 ms doubling to
/// an 800 ms cap — unless the connect budget is spent; returns false
/// when the caller should give up (ConnectFailed) instead.
bool Loadgen::scheduleRetry(size_t Idx) {
  Client &Cl = Clients[Idx];
  int64_t Now = nowNs();
  if (Now >= ConnectDeadlineNs)
    return false;
  if (Cl.Sock.valid()) {
    Poll.del(Cl.Sock.get());
    Cl.Sock.reset();
  }
  Cl.S.reset();
  Cl.Connected = false;
  Cl.WriteArmed = false;
  int64_t BackoffNs = 25ll * 1000000 << std::min(Cl.ConnectAttempts, 5u);
  Cl.NextConnectNs = Now + BackoffNs;
  ++Cl.ConnectAttempts;
  ++St.ConnectRetries;
  return true;
}

/// Re-attempts every backed-off client whose wait has elapsed.
void Loadgen::retryPending() {
  int64_t Now = nowNs();
  for (size_t I = 0; I != Clients.size(); ++I) {
    Client &Cl = Clients[I];
    if (!Cl.Dead && !Cl.Sock.valid() && Now >= Cl.NextConnectNs)
      startConnect(I);
  }
}

bool Loadgen::onFrame(Session &S, const WireFrame &F) {
  Client &Cl = Clients[S.conn()];
  switch (F.T) {
  case WireFrame::HelloAck:
    Cl.From = static_cast<HostId>(F.A);
    Cl.To = static_cast<HostId>(F.B);
    S.open();
    Cl.Handshaken = true;
    return true;
  case WireFrame::Deliver: {
    ++St.Delivers;
    if (F.Kind != static_cast<uint32_t>(sim::KindReply))
      return true; // the request's own delivery at the far host
    ++St.Replies;
    if (F.Seq == 0 || F.Seq > Cl.Sent) {
      ++St.SeqMismatches; // an echo we never sent
      return true;
    }
    // Replies come back in order per connection (TCP; approximately on
    // UDP), so matched and overtaken samples both leave from the front.
    auto &P = Cl.RttPending;
    size_t Drop = 0;
    for (; Drop != P.size() && P[Drop].first <= F.Seq; ++Drop)
      if (P[Drop].first == F.Seq)
        Rtt.record(static_cast<uint64_t>(
            std::max<int64_t>(0, nowNs() - P[Drop].second)));
    P.erase(P.begin(), P.begin() + static_cast<ptrdiff_t>(Drop));
    return true;
  }
  case WireFrame::BarrierAck:
    if (F.Seq > Cl.Sent)
      return false; // a fence we never posted
    if (Cl.BarrierAcked || F.Seq != Cl.Sent)
      return true; // duplicate or stale ack (UDP fence retransmission)
    Cl.BarrierAcked = true;
    ++St.BarrierAcks;
    return true;
  default:
    return false; // anything else is server-bound traffic
  }
}

void Loadgen::drive() {
  for (size_t I = 0; I != Clients.size(); ++I) {
    Client &Cl = Clients[I];
    if (Cl.Dead || !Cl.Handshaken || Cl.ByeSent ||
        Cl.S->state() == Session::State::Closed)
      continue;
    // Open loop with bounded buffering: keep at most two bursts queued
    // locally; the socket (and the server's overload policy) absorb the
    // rest of the pressure.
    if (Cl.Sent < Cl.PhaseTarget) {
      if (Cl.S->egressDepth() < 2 * C.Burst) {
        uint64_t Quota = std::min<uint64_t>(C.Burst, Cl.PhaseTarget - Cl.Sent);
        for (uint64_t K = 0; K != Quota; ++K) {
          WireFrame F;
          F.T = WireFrame::Inject;
          F.A = Cl.From;
          F.B = Cl.To;
          F.Kind = static_cast<uint32_t>(sim::KindRequest);
          F.Seq = ++Cl.Sent;
          Cl.S->enqueue(F);
          ++St.InjectsSent;
          if (C.RttSampleEvery && Cl.Sent % C.RttSampleEvery == 0 &&
              Cl.RttPending.size() < 4096)
            Cl.RttPending.push_back({Cl.Sent, nowNs()});
        }
        DidWork = true;
      }
    } else if (!Cl.BarrierSent) {
      WireFrame F;
      F.T = WireFrame::Barrier;
      F.Seq = Cl.Sent;
      Cl.S->enqueue(F);
      Cl.BarrierSent = true;
      Cl.BarrierSentNs = nowNs();
      DidWork = true;
    } else if (C.Udp && !Cl.BarrierAcked &&
               nowNs() - Cl.BarrierSentNs > 100 * 1000000) {
      // UDP: the fence (or its ack) can drown in the delivery flood the
      // fenced traffic provoked. The Barrier is idempotent server-side
      // and stale acks are ignored above, so just post it again.
      WireFrame F;
      F.T = WireFrame::Barrier;
      F.Seq = Cl.Sent;
      Cl.S->enqueue(F);
      Cl.BarrierSentNs = nowNs();
      DidWork = true;
    }
    if (Cl.S->wantsWrite())
      flushClient(I);
  }
  advancePhase();
}

void Loadgen::advancePhase() {
  if (AllPhasesDone)
    return;
  for (const Client &Cl : Clients)
    if (!Cl.Dead && !Cl.BarrierAcked)
      return;
  // Everyone alive passed the fence.
  if (Phase + 1 == C.Phases) {
    AllPhasesDone = true;
    for (size_t I = 0; I != Clients.size(); ++I) {
      Client &Cl = Clients[I];
      if (Cl.Dead)
        continue;
      WireFrame F;
      F.T = WireFrame::Bye;
      Cl.S->enqueue(F);
      Cl.ByeSent = true;
      flushClient(I);
    }
    return;
  }
  ++Phase;
  for (Client &Cl : Clients) {
    if (Cl.Dead)
      continue;
    Cl.BarrierSent = false;
    Cl.BarrierAcked = false;
    Cl.PhaseTarget = phaseTarget(Phase);
  }
}

void Loadgen::flushClient(size_t Idx) {
  Client &Cl = Clients[Idx];
  if (Cl.Dead || !Cl.Connected)
    return;
  Session &S = *Cl.S;
  bool Fatal = false;
  for (;;) {
    S.fillTx();
    size_t Pend = S.txPending();
    if (Pend == 0)
      break;
    ssize_t N;
    if (C.Udp) {
      size_t Chunk = std::min<size_t>(Pend, 48 * sim::WireFrameBytes);
      Chunk -= Chunk % sim::WireFrameBytes;
      N = ::send(Cl.Sock.get(), S.txData(), Chunk, 0);
    } else {
      N = ::write(Cl.Sock.get(), S.txData(), Pend);
    }
    if (N > 0) {
      S.txConsume(static_cast<size_t>(N));
      St.BytesSent += static_cast<uint64_t>(N);
      DidWork = true;
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    Fatal = true;
    break;
  }
  if (Fatal) {
    ++St.ProtocolErrors;
    teardown(Idx);
    return;
  }
  bool Want = S.wantsWrite();
  if (Want != Cl.WriteArmed) {
    Poll.mod(Cl.Sock.get(), Idx, /*Read=*/true, /*Write=*/Want);
    Cl.WriteArmed = Want;
  }
  if (Cl.ByeSent && !Want)
    teardown(Idx); // clean completion
}

void Loadgen::teardown(size_t Idx) {
  Client &Cl = Clients[Idx];
  if (Cl.Dead)
    return;
  if (Cl.Sock.valid())
    Poll.del(Cl.Sock.get());
  Cl.Sock.reset();
  Cl.Dead = true;
}

void Loadgen::handleEvent(const Ready &Ev) {
  size_t Idx = static_cast<size_t>(Ev.Token);
  if (Idx >= Clients.size())
    return;
  Client &Cl = Clients[Idx];
  if (Cl.Dead)
    return;
  if (Ev.Writable && !Cl.Connected) {
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(Cl.Sock.get(), SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    if (SoErr != 0) {
      // The usual "loadgen raced the server's listener" shape: the
      // refusal arrives asynchronously. Retry under the same budget.
      if (!scheduleRetry(Idx)) {
        ++St.ConnectFailed;
        teardown(Idx);
      }
      return;
    }
    Cl.Connected = true;
    ++St.Connected;
    WireFrame Hello;
    Hello.T = WireFrame::Hello;
    Hello.A = sim::WireProtoVersion;
    Hello.Seq = C.Seed + Idx; // nonce; seed-varied, server ignores it
    Cl.S->enqueue(Hello);
    DidWork = true;
  }
  if (Ev.Readable) {
    uint8_t Buf[65536];
    for (int Round = 0; Round != 8; ++Round) {
      ssize_t N = ::read(Cl.Sock.get(), Buf, sizeof(Buf));
      if (N > 0) {
        St.BytesReceived += static_cast<uint64_t>(N);
        DidWork = true;
        if (!Cl.S->ingest(Buf, static_cast<size_t>(N), *this)) {
          ++St.ProtocolErrors;
          teardown(Idx);
          return;
        }
        if (static_cast<size_t>(N) < sizeof(Buf))
          break;
        continue;
      }
      if (N == 0) { // server closed on us
        if (!Cl.ByeSent)
          ++St.ProtocolErrors;
        teardown(Idx);
        return;
      }
      break; // EAGAIN
    }
  }
  if (Ev.Error) {
    if (!Cl.ByeSent)
      ++St.ProtocolErrors;
    teardown(Idx);
    return;
  }
  if (Cl.S && Cl.S->wantsWrite())
    flushClient(Idx);
}

LoadgenStats Loadgen::run() {
  raiseFdLimit();
  int64_t Start = nowNs();
  int64_t Deadline = Start + static_cast<int64_t>(C.TimeoutMs) * 1000000;
  ConnectDeadlineNs =
      Start + static_cast<int64_t>(C.ConnectTimeoutMs) * 1000000;

  Clients.resize(C.Connections);
  for (size_t I = 0; I != Clients.size(); ++I)
    startConnect(I);

  std::vector<Ready> Events;
  for (;;) {
    bool AnyAlive = false;
    for (const Client &Cl : Clients)
      if (!Cl.Dead) {
        AnyAlive = true;
        break;
      }
    if (!AnyAlive)
      break;
    if (nowNs() > Deadline || (Stop && Stop->load(std::memory_order_relaxed))) {
      St.TimedOut = nowNs() > Deadline;
      break;
    }
    retryPending();
    drive();
    int TimeoutMs = DidWork ? 0 : 2;
    DidWork = false;
    int N = Poll.wait(Events, TimeoutMs);
    for (int I = 0; I < N; ++I)
      handleEvent(Events[static_cast<size_t>(I)]);
  }

  for (size_t I = 0; I != Clients.size(); ++I)
    teardown(I);
  for (const Client &Cl : Clients) {
    if (!Cl.S)
      continue;
    const SessionCounters &Ct = Cl.S->counters();
    St.FramesSent += Ct.FramesOut;
  }
  St.ElapsedSec = static_cast<double>(nowNs() - Start) * 1e-9;
  St.RttNs = Rtt.snapshot();
  return St;
}

} // namespace

LoadgenStats net::runLoadgen(const LoadgenConfig &C,
                             const std::atomic<bool> *Stop) {
  Loadgen L(C, Stop);
  return L.run();
}
