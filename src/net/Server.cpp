//===- net/Server.cpp - Socket front-end over the engine ------------------===//

#include "net/Server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace eventnet;
using namespace eventnet::net;
using eventnet::netkat::Packet;
using sim::WireFrame;

namespace {

// Poller tokens: small constants for the shared fds, conn ids offset by
// TokBase for sessions.
constexpr uint64_t TokTcpListen = 1;
constexpr uint64_t TokUdp = 2;
constexpr uint64_t TokWake = 3;
constexpr uint64_t TokBase = 8;

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t udpKey(uint32_t Ip, uint16_t Port) {
  return (static_cast<uint64_t>(Ip) << 16) | Port;
}

/// Whole frames per UDP datagram: stay under a conservative MTU.
constexpr size_t UdpFramesPerDatagram = 48;

} // namespace

Server::Server(ServerConfig Cfg) : C(std::move(Cfg)) {
  if (C.IngestBatch == 0)
    C.IngestBatch = 1;
  Ring = std::make_unique<engine::BoundedMpscQueue<Delivery>>(
      std::max<size_t>(2, C.DeliveryRingCapacity));
  InjBuf.reserve(C.IngestBatch);
}

Server::~Server() = default;

bool Server::open(std::string &Err) {
  if (!Poll.valid()) {
    Err = "poller initialization failed";
    return false;
  }
  int L = listenTcp(C.BindAddr, C.Port, Err);
  if (L < 0)
    return false;
  TcpListen.reset(L);
  TcpPort = localPort(L);
  if (C.EnableUdp) {
    int U = bindUdp(C.BindAddr, TcpPort, Err);
    if (U < 0)
      return false;
    UdpSock.reset(U);
  }
  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  WakeR.reset(Pipe[0]);
  WakeW.reset(Pipe[1]);
  setNonBlocking(WakeR.get());
  setNonBlocking(WakeW.get());

  Poll.add(TcpListen.get(), TokTcpListen, /*Read=*/true, /*Write=*/false);
  if (UdpSock.valid())
    Poll.add(UdpSock.get(), TokUdp, true, false);
  Poll.add(WakeR.get(), TokWake, true, false);
  return true;
}

void Server::attach(engine::Engine &Eng) {
  E = &Eng;
  Hosts.clear();
  HostId MaxH = 0;
  for (const auto &[H, At] : Eng.topology().hosts()) {
    (void)At;
    Hosts.push_back(H);
    MaxH = std::max(MaxH, H);
  }
  HostValid.assign(static_cast<size_t>(MaxH) + 1, false);
  for (HostId H : Hosts)
    HostValid[H] = true;
}

bool Server::validHost(uint32_t H) const {
  return H < HostValid.size() && HostValid[H];
}

//===----------------------------------------------------------------------===//
// Delivery path (shard threads -> loop thread)
//===----------------------------------------------------------------------===//

std::function<void(HostId, const Packet &)> Server::deliverySink() {
  return [this](HostId, const Packet &P) { sinkPush(P); };
}

void Server::sinkPush(const Packet &P) {
  Value Conn = P.getOr(sim::connField(), -1);
  if (Conn < 0) {
    // Engine-internal traffic (workload probes, non-socket injections):
    // nothing to echo.
    NonNetSink.add();
    return;
  }
  Delivery D;
  D.Conn = static_cast<uint64_t>(Conn);
  D.F = sim::deliverFrame(P);
  if (C.Session.Overload == engine::OverloadPolicy::Block) {
    // Lossless: a full ring backpressures the shard thread. The loop
    // always drains the ring, so waking it first makes progress certain.
    unsigned Att = 0;
    Ring->pushBlocking(std::move(D), [&] {
      wake();
      if (++Att > 64)
        std::this_thread::yield();
    });
  } else if (!Ring->tryPush(std::move(D))) {
    RingShed.add();
    return;
  }
  wake();
}

void Server::wake() {
  // One self-pipe byte per sleep/wake cycle: the exchange dedupes the
  // write() so a flood of deliveries costs one syscall, not millions.
  if (!WakePending.exchange(true, std::memory_order_acq_rel)) {
    uint8_t B = 1;
    ssize_t R = ::write(WakeW.get(), &B, 1);
    (void)R; // a full pipe already guarantees a pending wakeup
  }
}

void Server::drainWakePipe() {
  uint8_t Buf[256];
  while (::read(WakeR.get(), Buf, sizeof(Buf)) > 0) {
  }
  // Clear before draining the ring: a push after this store triggers a
  // fresh wakeup instead of being lost.
  WakePending.store(false, std::memory_order_release);
}

size_t Server::drainDeliveries() {
  Delivery Batch[256];
  size_t Routed = 0;
  for (;;) {
    size_t N = Ring->tryPopBatch(Batch, 256);
    if (N == 0)
      break;
    for (size_t I = 0; I != N; ++I) {
      Delivery &D = Batch[I];
      Session *S = sessionOf(D.Conn);
      if (!S || S->state() == Session::State::Closed) {
        ++Totals.DeliveryUnroutable;
        continue;
      }
      ++Totals.DeliveryFrames;
      if (S->enqueue(D.F) && D.F.Kind == static_cast<uint32_t>(sim::KindReply))
        ++Totals.RepliesOut;
      markDirty(D.Conn);
    }
    Routed += N;
  }
  return Routed;
}

//===----------------------------------------------------------------------===//
// Frame handling (loop thread, via Session::ingest)
//===----------------------------------------------------------------------===//

bool Server::onFrame(Session &S, const WireFrame &F) {
  switch (F.T) {
  case WireFrame::Hello: {
    if (F.A != sim::WireProtoVersion || Hosts.empty())
      return false;
    // Round-robin host assignment so clients need no topology knowledge;
    // the suggested destination is the next host over (echo traffic then
    // exercises distinct source/destination pairs).
    HostId From = Hosts[NextHost % Hosts.size()];
    HostId To = Hosts[(NextHost + 1) % Hosts.size()];
    ++NextHost;
    S.assign(From);
    S.open();
    WireFrame Ack;
    Ack.T = WireFrame::HelloAck;
    Ack.A = From;
    Ack.B = To;
    Ack.Seq = S.conn();
    sendFrame(S, Ack);
    return true;
  }
  case WireFrame::Inject: {
    if (!validHost(F.A) || !validHost(F.B))
      return false;
    engine::Injection In;
    In.From = static_cast<HostId>(F.A);
    In.Header = sim::frameHeader(F);
    In.Header.set(sim::connField(), static_cast<Value>(S.conn()));
    InjBuf.push_back(std::move(In));
    if (InjBuf.size() >= C.IngestBatch)
      flushIngest();
    return true;
  }
  case WireFrame::Barrier:
    PendingBarriers.push_back({S.conn(), F.Seq});
    return true;
  case WireFrame::Bye:
    return true; // the session state machine moves to Draining
  default:
    // HelloAck / Deliver / BarrierAck only flow server -> client.
    return false;
  }
}

void Server::flushIngest() {
  if (InjBuf.empty() || !E)
    return;
  E->injectBatch(InjBuf.data(), InjBuf.size());
  Totals.FramesInjected += InjBuf.size();
  InjBuf.clear();
}

void Server::ackBarriers() {
  if (PendingBarriers.empty())
    return;
  if (!InjBuf.empty() || !E || !E->quiescent())
    return;
  // Quiescent + flushed: every delivery the fenced traffic produced has
  // already been pushed into the ring (the sink runs before a message's
  // Pending share retires). Drain once more, then ack — per-connection
  // TCP ordering puts the ack after those deliveries on the wire.
  drainDeliveries();
  for (const auto &[Conn, Seq] : PendingBarriers) {
    Session *S = sessionOf(Conn);
    if (!S || S->state() == Session::State::Closed)
      continue;
    WireFrame Ack;
    Ack.T = WireFrame::BarrierAck;
    Ack.Seq = Seq;
    sendFrame(*S, Ack);
    ++Totals.BarriersAcked;
  }
  PendingBarriers.clear();
}

void Server::sendFrame(Session &S, const WireFrame &F) {
  S.enqueue(F);
  markDirty(S.conn());
}

//===----------------------------------------------------------------------===//
// Session bookkeeping
//===----------------------------------------------------------------------===//

Session *Server::sessionOf(uint64_t Conn) {
  auto It = Tcp.find(Conn);
  if (It != Tcp.end())
    return It->second.S.get();
  auto Iu = Udp.find(Conn);
  if (Iu != Udp.end())
    return Iu->second.S.get();
  return nullptr;
}

void Server::markDirty(uint64_t Conn) {
  auto It = Tcp.find(Conn);
  if (It != Tcp.end()) {
    if (!It->second.Dirty) {
      It->second.Dirty = true;
      DirtyConns.push_back(Conn);
    }
    return;
  }
  auto Iu = Udp.find(Conn);
  if (Iu != Udp.end() && !Iu->second.Dirty) {
    Iu->second.Dirty = true;
    DirtyConns.push_back(Conn);
  }
}

void Server::absorbCounters(const Session &S) {
  const SessionCounters &Ct = S.counters();
  Totals.FramesIn += Ct.FramesIn;
  Totals.FramesOut += Ct.FramesOut;
  Totals.BytesIn += Ct.BytesIn;
  Totals.BytesOut += Ct.BytesOut;
  Totals.ReassemblyPartial += Ct.ReassemblyPartial;
  Totals.BackpressureShed += Ct.EgressShed;
}

void Server::teardownTcp(uint64_t Conn, bool CountClosed) {
  auto It = Tcp.find(Conn);
  if (It == Tcp.end())
    return;
  Poll.del(It->second.Sock.get());
  absorbCounters(*It->second.S);
  Tcp.erase(It);
  if (CountClosed)
    ++Totals.Closed;
}

//===----------------------------------------------------------------------===//
// Socket events
//===----------------------------------------------------------------------===//

void Server::acceptReady() {
  for (;;) {
    int Fd = ::accept(TcpListen.get(), nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (or a transient error): back to the poller
    if (Tcp.size() + Udp.size() >= C.MaxSessions) {
      ::close(Fd);
      ++Totals.Rejected;
      continue;
    }
    setNonBlocking(Fd);
    setNoDelay(Fd);
    uint64_t Conn = NextConn++;
    TcpConn T;
    T.Sock.reset(Fd);
    T.S = std::make_unique<Session>(Conn, C.Session);
    Poll.add(Fd, TokBase + Conn, /*Read=*/true, /*Write=*/false);
    Tcp.emplace(Conn, std::move(T));
    ++Totals.Accepted;
  }
}

void Server::udpReady() {
  uint8_t Buf[65536];
  for (int Round = 0; Round != 256; ++Round) {
    sockaddr_in Sa;
    socklen_t Len = sizeof(Sa);
    ssize_t N = ::recvfrom(UdpSock.get(), Buf, sizeof(Buf), 0,
                           reinterpret_cast<sockaddr *>(&Sa), &Len);
    if (N < 0)
      return;
    ++Totals.UdpDatagrams;
    uint64_t Key = udpKey(Sa.sin_addr.s_addr, ntohs(Sa.sin_port));
    auto KeyIt = UdpByKey.find(Key);
    uint64_t Conn;
    if (KeyIt == UdpByKey.end()) {
      if (Tcp.size() + Udp.size() >= C.MaxSessions) {
        ++Totals.Rejected;
        continue;
      }
      Conn = NextConn++;
      UdpPeer P;
      P.Ip = Sa.sin_addr.s_addr;
      P.Prt = ntohs(Sa.sin_port);
      P.S = std::make_unique<Session>(Conn, C.Session);
      Udp.emplace(Conn, std::move(P));
      UdpByKey.emplace(Key, Conn);
      ++Totals.Accepted;
    } else {
      Conn = KeyIt->second;
    }
    auto It = Udp.find(Conn);
    if (It == Udp.end())
      continue;
    if (!It->second.S->ingest(Buf, static_cast<size_t>(N), *this)) {
      ++Totals.ProtocolErrors;
      absorbCounters(*It->second.S);
      Udp.erase(It);
      UdpByKey.erase(Key);
      ++Totals.Closed;
    }
  }
}

void Server::tcpReady(uint64_t Conn, const Ready &Ev) {
  auto It = Tcp.find(Conn);
  if (It == Tcp.end())
    return;
  TcpConn &T = It->second;
  if (Ev.Readable) {
    uint8_t Buf[65536];
    for (int Round = 0; Round != 8; ++Round) {
      ssize_t N = ::read(T.Sock.get(), Buf, sizeof(Buf));
      if (N > 0) {
        if (!T.S->ingest(Buf, static_cast<size_t>(N), *this)) {
          ++Totals.ProtocolErrors;
          teardownTcp(Conn, true);
          return;
        }
        if (static_cast<size_t>(N) < sizeof(Buf))
          break;
        continue;
      }
      if (N == 0) { // peer closed
        teardownTcpFlushing(Conn);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      teardownTcp(Conn, true);
      return;
    }
  }
  if (Ev.Error) {
    teardownTcp(Conn, true);
    return;
  }
  if (Ev.Writable)
    flushTcp(Conn, T);
}

void Server::teardownTcpFlushing(uint64_t Conn) {
  // EOF from the peer: flush whatever egress we can synchronously (the
  // common case — a client that sent Bye and shut down its write side
  // still wants its last deliveries), then close.
  auto It = Tcp.find(Conn);
  if (It == Tcp.end())
    return;
  flushTcp(Conn, It->second);
  teardownTcp(Conn, true);
}

void Server::flushTcp(uint64_t Conn, TcpConn &T) {
  Session &S = *T.S;
  bool Fatal = false;
  for (;;) {
    S.fillTx();
    size_t P = S.txPending();
    if (P == 0)
      break;
    ssize_t N = ::write(T.Sock.get(), S.txData(), P);
    if (N > 0) {
      S.txConsume(static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    Fatal = true;
    break;
  }
  T.Dirty = false;
  if (Fatal) {
    teardownTcp(Conn, true);
    return;
  }
  // Under the Block policy a saturated egress queue parks the read side
  // — the client stops being able to push new Injects until its own
  // reply backlog drains — which is what makes Block lossless instead
  // of unbounded: the TCP window, not this process's memory, absorbs
  // the overload.
  bool Want = S.wantsWrite();
  bool ReadWant = !S.wantsBackpressure();
  if (Want != T.WriteArmed || ReadWant != T.ReadArmed) {
    Poll.mod(T.Sock.get(), TokBase + Conn, /*Read=*/ReadWant,
             /*Write=*/Want);
    T.WriteArmed = Want;
    T.ReadArmed = ReadWant;
  }
  if (!Want && S.state() == Session::State::Draining)
    teardownTcp(Conn, true);
}

void Server::flushUdp(UdpPeer &P) {
  Session &S = *P.S;
  sockaddr_in Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sin_family = AF_INET;
  Sa.sin_addr.s_addr = P.Ip;
  Sa.sin_port = htons(P.Prt);
  for (;;) {
    S.fillTx();
    size_t Pend = S.txPending();
    if (Pend == 0)
      break;
    // TxBuf holds whole frames only; one datagram carries a prefix of
    // them (stays under a conservative MTU).
    size_t Chunk =
        std::min(Pend, UdpFramesPerDatagram * sim::WireFrameBytes);
    Chunk -= Chunk % sim::WireFrameBytes;
    ssize_t N = ::sendto(UdpSock.get(), S.txData(), Chunk, 0,
                         reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa));
    if (N < 0)
      break; // full socket buffer: retry next pass (stay dirty)
    S.txConsume(static_cast<size_t>(N));
  }
  P.Dirty = S.wantsWrite();
}

void Server::flushWrites() {
  if (DirtyConns.empty())
    return;
  // flushTcp can tear a session down; iterate a swapped-out list.
  std::vector<uint64_t> Work;
  Work.swap(DirtyConns);
  for (uint64_t Conn : Work) {
    auto It = Tcp.find(Conn);
    if (It != Tcp.end()) {
      flushTcp(Conn, It->second);
      continue;
    }
    auto Iu = Udp.find(Conn);
    if (Iu == Udp.end())
      continue;
    flushUdp(Iu->second);
    if (Iu->second.Dirty) {
      DirtyConns.push_back(Conn); // UDP buffer was full: retry
    } else if (Iu->second.S->state() == Session::State::Draining) {
      UdpByKey.erase(udpKey(Iu->second.Ip, Iu->second.Prt));
      absorbCounters(*Iu->second.S);
      Udp.erase(Iu);
      ++Totals.Closed;
    }
  }
}

bool Server::anyPendingWrites() const {
  for (const auto &[Conn, T] : Tcp) {
    (void)Conn;
    if (T.S->wantsWrite())
      return true;
  }
  for (const auto &[Conn, P] : Udp) {
    (void)Conn;
    if (P.S->wantsWrite())
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// The loop
//===----------------------------------------------------------------------===//

void Server::serve(const std::atomic<bool> &Stop) {
  bool Stopping = false;
  int64_t Deadline = 0;
  for (;;) {
    if (!Stopping && Stop.load(std::memory_order_relaxed)) {
      // Graceful drain: stop accepting, finish what is in flight.
      Stopping = true;
      Deadline = nowNs() + static_cast<int64_t>(C.DrainTimeoutMs) * 1000000;
      if (TcpListen.valid()) {
        Poll.del(TcpListen.get());
        TcpListen.reset();
      }
    }
    bool Busy = !InjBuf.empty() || !DirtyConns.empty();
    // Barrier waits poll at 1ms so the engine gets the cores; pure idle
    // sleeps longer (deliveries wake us via the self-pipe).
    int TimeoutMs =
        Busy ? 0 : (!PendingBarriers.empty() || Stopping) ? 1 : 20;
    int N = Poll.wait(Events, TimeoutMs);
    for (int I = 0; I < N; ++I) {
      const Ready &Ev = Events[static_cast<size_t>(I)];
      if (Ev.Token == TokTcpListen)
        acceptReady();
      else if (Ev.Token == TokUdp)
        udpReady();
      else if (Ev.Token == TokWake)
        drainWakePipe();
      else
        tcpReady(Ev.Token - TokBase, Ev);
    }
    flushIngest();
    drainDeliveries();
    ackBarriers();
    flushWrites();

    if (Stopping) {
      bool Quiet = InjBuf.empty() && PendingBarriers.empty() &&
                   (!E || E->quiescent());
      if (Quiet && drainDeliveries() == 0 && !anyPendingWrites())
        break;
      flushWrites();
      if (nowNs() > Deadline)
        break;
    }
  }

  // Tear everything down; counters of live sessions fold into Totals.
  std::vector<uint64_t> Conns;
  Conns.reserve(Tcp.size());
  for (const auto &[Conn, T] : Tcp) {
    (void)T;
    Conns.push_back(Conn);
  }
  for (uint64_t Conn : Conns)
    teardownTcp(Conn, true);
  for (auto &[Conn, P] : Udp) {
    (void)Conn;
    absorbCounters(*P.S);
    ++Totals.Closed;
  }
  Udp.clear();
  UdpByKey.clear();
}

ServerStats Server::stats() const {
  ServerStats S = Totals;
  for (const auto &[Conn, T] : Tcp) {
    (void)Conn;
    const SessionCounters &Ct = T.S->counters();
    S.FramesIn += Ct.FramesIn;
    S.FramesOut += Ct.FramesOut;
    S.BytesIn += Ct.BytesIn;
    S.BytesOut += Ct.BytesOut;
    S.ReassemblyPartial += Ct.ReassemblyPartial;
    S.BackpressureShed += Ct.EgressShed;
  }
  for (const auto &[Conn, P] : Udp) {
    (void)Conn;
    const SessionCounters &Ct = P.S->counters();
    S.FramesIn += Ct.FramesIn;
    S.FramesOut += Ct.FramesOut;
    S.BytesIn += Ct.BytesIn;
    S.BytesOut += Ct.BytesOut;
    S.ReassemblyPartial += Ct.ReassemblyPartial;
    S.BackpressureShed += Ct.EgressShed;
  }
  uint64_t RS = RingShed.get();
  S.RingShed = RS;
  S.BackpressureShed += RS;
  S.NonNetDeliveries = NonNetSink.get();
  return S;
}
