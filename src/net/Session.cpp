//===- net/Session.cpp - Per-connection framing state machine -------------===//

#include "net/Session.h"

using namespace eventnet;
using namespace eventnet::net;
using sim::WireFrame;

Session::Session(uint64_t Conn, SessionConfig Cfg) : Conn(Conn), C(Cfg) {
  if (C.EgressCapacity == 0)
    C.EgressCapacity = 1;
}

bool Session::ingest(const uint8_t *Data, size_t Len, FrameHandler &H) {
  if (St == State::Closed)
    return false;
  Ct.BytesIn += Len;

  // Fast path: no partial frame buffered — decode straight out of the
  // caller's read buffer and only copy the (sub-frame-sized) leftover.
  const uint8_t *Buf = Data;
  size_t Avail = Len;
  bool FromRx = !Rx.empty();
  if (FromRx) {
    Rx.insert(Rx.end(), Data, Data + Len);
    Buf = Rx.data();
    Avail = Rx.size();
  }

  size_t Off = 0;
  bool Bad = false;
  while (!Bad) {
    WireFrame F;
    size_t Used = 0;
    sim::FrameDecode R = sim::decodeFrame(Buf + Off, Avail - Off, F, Used);
    if (R == sim::FrameDecode::NeedMore)
      break;
    if (R == sim::FrameDecode::Malformed) {
      Bad = true;
      break;
    }
    Off += Used;
    ++Ct.FramesIn;

    // Handshake ordering. The handler performs the open() transition on
    // a valid greeting; the session only enforces that frames arrive in
    // a legal state for its role.
    bool ClientRole = C.Role == SessionRole::Client;
    uint8_t Greeting = ClientRole ? WireFrame::HelloAck : WireFrame::Hello;
    if (St == State::AwaitHello && F.T != Greeting) {
      Bad = true;
      break;
    }
    if (St != State::AwaitHello && F.T == Greeting) {
      Bad = true; // duplicate greeting
      break;
    }
    if (St == State::Draining && !ClientRole) {
      Bad = true; // traffic after Bye
      break;
    }
    if (!H.onFrame(*this, F)) {
      Bad = true;
      break;
    }
    if (F.T == WireFrame::Bye && !ClientRole && St != State::Closed)
      St = State::Draining;
  }

  if (Bad) {
    close();
    Rx.clear();
    return false;
  }

  // Keep the unconsumed tail (always smaller than one frame) for the
  // next read.
  size_t Left = Avail - Off;
  if (Left == 0) {
    Rx.clear();
  } else {
    ++Ct.ReassemblyPartial;
    if (FromRx)
      Rx.erase(Rx.begin(), Rx.begin() + static_cast<ptrdiff_t>(Off));
    else
      Rx.assign(Buf + Off, Buf + Avail);
  }
  return true;
}

bool Session::enqueue(const WireFrame &F) {
  if (St == State::Closed)
    return false;
  if (C.Overload != engine::OverloadPolicy::Block &&
      Egress.size() >= C.EgressCapacity) {
    ++Ct.EgressShed;
    if (C.Overload == engine::OverloadPolicy::ShedNewest)
      return false;
    // ShedOldest: retire the stalest queued frame to admit the new one.
    Egress.pop_front();
    Egress.push_back(F);
    return true;
  }
  Egress.push_back(F);
  return true;
}

bool Session::wantsBackpressure() const {
  // Frames already serialized into TxBuf are still unacknowledged
  // backlog — count them, or fillTx() would launder the queue past the
  // bound before the server ever sees the signal.
  size_t Serialized = (TxBuf.size() - TxOff) / sim::WireFrameBytes;
  return C.Overload == engine::OverloadPolicy::Block &&
         Egress.size() + Serialized >= C.EgressCapacity;
}

bool Session::fillTx() {
  if (TxOff == TxBuf.size()) {
    TxBuf.clear();
    TxOff = 0;
  } else if (TxOff > (1u << 16)) {
    TxBuf.erase(TxBuf.begin(), TxBuf.begin() + static_cast<ptrdiff_t>(TxOff));
    TxOff = 0;
  }
  // Bound the serialized backlog per call; the rest stays as frames (a
  // shed policy can still act on them).
  constexpr size_t MaxPendingBytes = 256 * 1024;
  while (!Egress.empty() && TxBuf.size() - TxOff < MaxPendingBytes) {
    uint8_t Tmp[sim::WireFrameBytes];
    sim::encodeFrame(Egress.front(), Tmp);
    TxBuf.insert(TxBuf.end(), Tmp, Tmp + sim::WireFrameBytes);
    Egress.pop_front();
    ++Ct.FramesOut;
  }
  return txPending() != 0;
}

void Session::txConsume(size_t N) {
  TxOff += N;
  Ct.BytesOut += N;
  if (TxOff == TxBuf.size()) {
    TxBuf.clear();
    TxOff = 0;
  }
}
