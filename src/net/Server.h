//===- net/Server.h - Socket front-end over the engine ----------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-socket backend's server half: a single-threaded event loop
/// (net/Poller.h — epoll on Linux, poll elsewhere) accepting TCP
/// connections and UDP peers that speak the sim/Wire.h length-prefixed
/// framing, bridged to the sharded engine's streaming surface:
///
///  - Ingest: completed Inject frames become engine::Injections (the
///    header stamped with the session's conn tag, which rides every hop
///    untouched), batched and handed to Engine::injectBatch on the loop
///    thread — the engine's single external injector.
///  - Delivery: the engine's DeliverySink (shard threads) pushes each
///    conn-tagged delivery into one bounded MPSC ring and wakes the
///    loop via a self-pipe (write-deduplicated by an atomic flag); the
///    loop routes frames to the owning session's bounded egress queue
///    under the engine's overload-policy semantics, with every shed
///    counted so conservation is checkable end to end.
///  - Barriers: a client's Barrier frame is acked only after all
///    buffered ingest is flushed, the engine is quiescent, and the
///    delivery ring is drained — TCP ordering then guarantees the
///    client saw every delivery of the fenced traffic before the ack.
///  - Shutdown: a stop flag (e.g. net/Signal.h) closes the listeners,
///    drains sessions and the engine, flushes egress, and returns; the
///    caller still gets complete stats, trace, and drop audit.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NET_SERVER_H
#define EVENTNET_NET_SERVER_H

#include "engine/Engine.h"
#include "net/Poller.h"
#include "net/Session.h"
#include "net/Socket.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace eventnet {
namespace net {

struct ServerConfig {
  /// Bind address for both listeners ("0.0.0.0" to serve off-box).
  std::string BindAddr = "127.0.0.1";
  /// TCP listen port; 0 binds an ephemeral port (see Server::port).
  uint16_t Port = 0;
  /// Also bind a UDP socket on the same port number.
  bool EnableUdp = true;
  /// Inject frames buffered before an Engine::injectBatch hand-off.
  unsigned IngestBatch = 256;
  /// Delivery MPSC ring capacity (frames; rounded to a power of two).
  size_t DeliveryRingCapacity = 1 << 16;
  /// Per-session egress bound and overload policy.
  SessionConfig Session;
  /// Accept no more than this many live sessions.
  size_t MaxSessions = 1 << 16;
  /// After a stop request, force-close whatever has not drained within
  /// this budget.
  unsigned DrainTimeoutMs = 2000;
};

/// Aggregated server counters (loop-thread written; read after serve()
/// returns, or from the loop thread itself).
struct ServerStats {
  uint64_t Accepted = 0;          ///< TCP accepts + distinct UDP peers
  uint64_t Closed = 0;            ///< sessions torn down
  uint64_t Rejected = 0;          ///< accepts refused (MaxSessions)
  uint64_t ProtocolErrors = 0;    ///< sessions killed by bad frames
  uint64_t FramesIn = 0;          ///< complete frames decoded
  uint64_t FramesOut = 0;         ///< frames serialized toward sockets
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t FramesInjected = 0;    ///< Inject frames handed to the engine
  uint64_t DeliveryFrames = 0;    ///< deliveries routed into an egress
  uint64_t RepliesOut = 0;        ///< of those, echo replies (KindReply)
  uint64_t ReassemblyPartial = 0; ///< reads that ended mid-frame
  uint64_t BackpressureShed = 0;  ///< egress + delivery-ring sheds
  uint64_t RingShed = 0;          ///< of those, shed at the delivery ring
  uint64_t DeliveryUnroutable = 0; ///< conn tag of a dead session
  uint64_t NonNetDeliveries = 0;  ///< deliveries without a conn tag
  uint64_t BarriersAcked = 0;
  uint64_t UdpDatagrams = 0;
};

class Server : private Session::FrameHandler {
public:
  explicit Server(ServerConfig C);
  ~Server() override;

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listeners. Returns false and fills \p Err on failure.
  bool open(std::string &Err);
  /// The bound TCP port (after open; resolves an ephemeral request).
  uint16_t port() const { return TcpPort; }

  /// The delivery hook to install as EngineConfig::DeliverySink *before*
  /// constructing the engine. Thread-safe; called from shard threads.
  std::function<void(HostId, const netkat::Packet &)> deliverySink();

  /// Binds the (constructed, not yet started) engine this server feeds.
  void attach(engine::Engine &E);

  /// The event loop: runs until \p Stop is set, then drains gracefully.
  /// Caller sequence: open(); build engine with deliverySink();
  /// attach(); Engine::start(); serve(); Engine::finish().
  void serve(const std::atomic<bool> &Stop);

  /// Counter snapshot (includes torn-down sessions' counts).
  ServerStats stats() const;

private:
  struct TcpConn {
    Fd Sock;
    std::unique_ptr<Session> S;
    bool WriteArmed = false;
    bool ReadArmed = true; ///< false while Block-policy backpressure parks
                           ///< the read side (no new Injects accepted)
    bool Dirty = false;    ///< egress touched since the last flush pass
  };
  struct UdpPeer {
    uint32_t Ip = 0; ///< network order
    uint16_t Prt = 0;
    std::unique_ptr<Session> S;
    bool Dirty = false;
  };
  /// One delivery in flight from a shard thread to the loop.
  struct Delivery {
    uint64_t Conn = 0;
    sim::WireFrame F;
  };

  // Session::FrameHandler
  bool onFrame(Session &S, const sim::WireFrame &F) override;

  void sinkPush(const netkat::Packet &P);
  void wake();
  void drainWakePipe();
  void acceptReady();
  void udpReady();
  void tcpReady(uint64_t Conn, const Ready &Ev);
  void flushIngest();
  /// Routes ring deliveries into session egress queues. Returns frames
  /// routed this pass.
  size_t drainDeliveries();
  void ackBarriers();
  void flushWrites();
  void flushTcp(uint64_t Conn, TcpConn &T);
  void flushUdp(UdpPeer &P);
  void teardownTcp(uint64_t Conn, bool CountClosed);
  void teardownTcpFlushing(uint64_t Conn);
  void absorbCounters(const Session &S);
  void sendFrame(Session &S, const sim::WireFrame &F);
  void markDirty(uint64_t Conn);
  Session *sessionOf(uint64_t Conn);
  bool validHost(uint32_t H) const;
  bool anyPendingWrites() const;

  ServerConfig C;
  engine::Engine *E = nullptr;
  Poller Poll;
  Fd TcpListen, UdpSock, WakeR, WakeW;
  uint16_t TcpPort = 0;

  std::vector<HostId> Hosts; ///< round-robin Hello assignment order
  size_t NextHost = 0;
  std::vector<bool> HostValid; ///< by host id (dense ids in practice)

  uint64_t NextConn = 1;
  std::unordered_map<uint64_t, TcpConn> Tcp;      ///< by conn id
  std::unordered_map<uint64_t, uint64_t> UdpByKey; ///< addr key -> conn
  std::unordered_map<uint64_t, UdpPeer> Udp;       ///< by conn id

  std::vector<engine::Injection> InjBuf;
  std::vector<std::pair<uint64_t, uint64_t>> PendingBarriers; ///< conn, seq
  std::vector<uint64_t> DirtyConns;

  // Shard-thread -> loop-thread delivery path.
  std::unique_ptr<engine::BoundedMpscQueue<Delivery>> Ring;
  std::atomic<bool> WakePending{false};
  engine::RelaxedCounter RingShed;      ///< sink-side sheds (shed policies)
  engine::RelaxedCounter NonNetSink;    ///< sink calls without a conn tag

  ServerStats Totals; ///< loop-thread accumulator (+ closed sessions)
  std::vector<Ready> Events;
  std::vector<uint64_t> Doomed; ///< sessions to tear down after dispatch
};

} // namespace net
} // namespace eventnet

#endif // EVENTNET_NET_SERVER_H
