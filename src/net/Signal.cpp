//===- net/Signal.cpp - Graceful-shutdown signal plumbing -----------------===//

#include "net/Signal.h"

#include <csignal>

using namespace eventnet;

static std::atomic<bool> ShutdownFlag{false};

std::atomic<bool> &net::shutdownRequested() { return ShutdownFlag; }

namespace {

void onShutdownSignal(int Sig) {
  ShutdownFlag.store(true, std::memory_order_relaxed);
  // Second signal: give up on graceful drain. Restoring the default
  // disposition means the next delivery terminates the process.
  std::signal(Sig, SIG_DFL);
}

} // namespace

void net::installShutdownHandlers() {
  std::signal(SIGINT, onShutdownSignal);
  std::signal(SIGTERM, onShutdownSignal);
}
