//===- net/Session.h - Per-connection framing state machine -----*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One client connection's protocol state, independent of any fd so the
/// tests can drive it with byte arrays:
///
///  - ingest(): incremental reassembly of the sim/Wire.h length-prefixed
///    framing from arbitrary read() chunks (a frame may arrive one byte
///    at a time, or fifty frames in one chunk), with handshake ordering
///    enforced (Hello first, exactly once; nothing after Bye) and
///    malformed prefixes treated as fatal protocol errors.
///  - enqueue()/fillTx(): a bounded egress queue of outgoing frames
///    under the engine's overload-policy semantics (Block = unbounded
///    growth i.e. backpressure belongs upstream; ShedOldest/ShedNewest
///    = bound the backlog and count every shed), serialized into a
///    reusable tx byte buffer that tolerates partial writes.
///
/// The Server owns the fd, the engine hookup, and the Hello/HelloAck
/// host assignment; the Session owns bytes, frames, and counters.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_NET_SESSION_H
#define EVENTNET_NET_SESSION_H

#include "engine/Engine.h"
#include "sim/Wire.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace eventnet {
namespace net {

/// Which side of the protocol this session speaks — it decides the
/// inbound handshake ordering ingest() enforces.
enum class SessionRole : uint8_t {
  Server, ///< first inbound frame must be Hello; nothing after Bye
  Client, ///< first inbound frame must be HelloAck; deliveries may
          ///< still arrive while draining (after our own Bye)
};

struct SessionConfig {
  /// Egress-queue bound (frames, counting those already serialized but
  /// unwritten). Under ShedOldest/ShedNewest the backlog never exceeds
  /// this; under Block the queue itself may grow but wantsBackpressure
  /// turns on at the bound, and the server parks the connection's read
  /// side until the backlog drains (TCP flow control absorbs the rest).
  size_t EgressCapacity = 4096;
  engine::OverloadPolicy Overload = engine::OverloadPolicy::Block;
  SessionRole Role = SessionRole::Server;
};

struct SessionCounters {
  uint64_t FramesIn = 0;  ///< complete frames decoded
  uint64_t FramesOut = 0; ///< frames fully serialized toward the socket
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t ReassemblyPartial = 0; ///< ingest calls ending mid-frame
  uint64_t EgressShed = 0;        ///< frames shed by the overload policy
};

class Session {
public:
  enum class State : uint8_t {
    AwaitHello, ///< nothing but a Hello is legal
    Open,       ///< handshake done; traffic flows
    Draining,   ///< Bye received; flush egress, then close
    Closed,     ///< protocol error or torn down
  };

  /// Receives each completed frame during ingest(). Return false to
  /// reject the frame as a protocol error (the session closes).
  class FrameHandler {
  public:
    virtual ~FrameHandler() = default;
    virtual bool onFrame(Session &S, const sim::WireFrame &F) = 0;
  };

  Session(uint64_t Conn, SessionConfig C);

  uint64_t conn() const { return Conn; }
  State state() const { return St; }
  const SessionCounters &counters() const { return Ct; }

  /// The server's Hello/HelloAck assignment, stored here so the
  /// delivery router can sanity-check and tests can observe it.
  HostId assignedHost() const { return Assigned; }
  void assign(HostId H) { Assigned = H; }

  /// Marks the handshake complete (server sent the HelloAck).
  void open() { St = State::Open; }
  /// Marks the session draining (Bye seen) or closed.
  void drain() { St = State::Draining; }
  void close() { St = State::Closed; }

  /// Feeds \p Len raw bytes; every completed frame is handed to \p H in
  /// arrival order. Returns false on a protocol error (malformed frame,
  /// handshake violation, or handler rejection) — the session is Closed
  /// and the caller should tear the transport down after flushing.
  bool ingest(const uint8_t *Data, size_t Len, FrameHandler &H);

  /// Queues \p F for transmission under the overload policy. Returns
  /// false if the frame was shed instead (counted in EgressShed).
  bool enqueue(const sim::WireFrame &F);

  /// Frames queued but not yet serialized.
  size_t egressDepth() const { return Egress.size(); }
  /// Block policy only: the backlog has passed the advisory bound, so
  /// the caller should stop feeding this session (stop draining the
  /// delivery ring) until writes catch up.
  bool wantsBackpressure() const;

  /// Serializes queued frames into the tx buffer (bounded per call).
  /// True if any bytes are now pending.
  bool fillTx();
  const uint8_t *txData() const { return TxBuf.data() + TxOff; }
  size_t txPending() const { return TxBuf.size() - TxOff; }
  /// Consumes \p N bytes after a successful write.
  void txConsume(size_t N);
  /// Anything left to write (or serialize)?
  bool wantsWrite() const { return txPending() != 0 || !Egress.empty(); }

private:
  uint64_t Conn;
  SessionConfig C;
  State St = State::AwaitHello;
  HostId Assigned = 0;
  SessionCounters Ct;

  std::vector<uint8_t> Rx; ///< unconsumed partial-frame bytes
  std::deque<sim::WireFrame> Egress;
  std::vector<uint8_t> TxBuf;
  size_t TxOff = 0;
};

} // namespace net
} // namespace eventnet

#endif // EVENTNET_NET_SESSION_H
