//===- support/Symbols.h - Interned field names ----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide interner for packet header field names. NetKAT policies,
/// flow tables, and the simulator all refer to fields by small dense
/// FieldId integers; this table maps names to ids and back.
///
/// Two field names are reserved and always interned first so that FDD
/// variable ordering places them at the root of every diagram:
///   - "sw" (FieldSw = 0): the switch location of a packet,
///   - "pt" (FieldPt = 1): the port location of a packet.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SUPPORT_SYMBOLS_H
#define EVENTNET_SUPPORT_SYMBOLS_H

#include "support/Ids.h"

#include <deque>
#include <mutex>
#include <string>

namespace eventnet {

/// FieldId of the reserved switch-location pseudo field.
inline constexpr FieldId FieldSw = 0;
/// FieldId of the reserved port-location pseudo field.
inline constexpr FieldId FieldPt = 1;
/// First FieldId available for user-defined header fields.
inline constexpr FieldId FirstUserField = 2;

/// Process-wide field-name interner.
///
/// The table is intentionally a global: FieldIds flow through every layer
/// of the system (ASTs, FDDs, flow tables, simulated packets) and carrying
/// an explicit context through all of them would add noise without any
/// benefit for a single-network-program process. All methods are cheap and
/// guarded by a mutex so the concurrent engine's worker threads may intern
/// or resolve names safely; names live in a deque so references returned
/// by name() stay valid as the table grows.
class FieldTable {
public:
  /// Returns the singleton table.
  static FieldTable &get();

  /// Interns \p Name, returning its id. Idempotent.
  FieldId intern(const std::string &Name);

  /// Returns the id of \p Name, or FieldId(-1) if it was never interned.
  FieldId lookup(const std::string &Name) const;

  /// Returns the name of \p Id. \p Id must have been interned.
  const std::string &name(FieldId Id) const;

  /// Number of interned fields (including the reserved sw/pt fields).
  size_t size() const;

private:
  FieldTable();
  mutable std::mutex Mu;
  std::deque<std::string> Names;
};

/// Convenience shorthand: interns \p Name in the global table.
FieldId fieldOf(const std::string &Name);

/// Convenience shorthand: name of \p Id in the global table.
const std::string &fieldName(FieldId Id);

} // namespace eventnet

#endif // EVENTNET_SUPPORT_SYMBOLS_H
