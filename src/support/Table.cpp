//===- support/Table.cpp - Plain-text table/CSV output --------------------===//

#include "support/Table.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <ostream>

using namespace eventnet;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

void TextTable::addRow(std::initializer_list<std::string> Row) {
  addRow(std::vector<std::string>(Row));
}

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 != Row.size())
        OS << std::string(Widths[C] - Row[C].size() + 2, ' ');
    }
    OS << '\n';
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  OS << std::string(Total > 2 ? Total - 2 : Total, '-') << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void TextTable::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 != Row.size())
        OS << ',';
    }
    OS << '\n';
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void TextTable::printJson(std::ostream &OS) const {
  // The exact JSON number grammar, -?(0|[1-9][0-9]*)(.[0-9]+)?(e...)?:
  // strtod would admit "nan"/"inf"/hex/"+5"/"5."/".5"/"007", all of
  // which JSON parsers reject unquoted.
  auto IsNumeric = [](const std::string &S) {
    size_t I = 0, N = S.size();
    auto Digit = [&](size_t J) {
      return J < N && isdigit(static_cast<unsigned char>(S[J]));
    };
    if (I != N && S[I] == '-')
      ++I;
    if (!Digit(I))
      return false;
    if (S[I] == '0')
      ++I; // no leading zeros
    else
      while (Digit(I))
        ++I;
    if (I != N && S[I] == '.') {
      ++I;
      if (!Digit(I))
        return false;
      while (Digit(I))
        ++I;
    }
    if (I != N && (S[I] == 'e' || S[I] == 'E')) {
      ++I;
      if (I != N && (S[I] == '-' || S[I] == '+'))
        ++I;
      if (!Digit(I))
        return false;
      while (Digit(I))
        ++I;
    }
    return I == N;
  };
  auto PrintCell = [&](const std::string &S) {
    if (IsNumeric(S)) {
      OS << S;
      return;
    }
    OS << '"';
    for (char Ch : S) {
      if (Ch == '"' || Ch == '\\') {
        OS << '\\' << Ch;
      } else if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        OS << Buf;
      } else {
        OS << Ch;
      }
    }
    OS << '"';
  };

  OS << "[";
  for (size_t R = 0; R != Rows.size(); ++R) {
    OS << (R ? ",\n " : "\n ") << "{";
    for (size_t C = 0; C != Header.size(); ++C) {
      if (C)
        OS << ", ";
      PrintCell(Header[C]);
      OS << ": ";
      PrintCell(Rows[R][C]);
    }
    OS << "}";
  }
  OS << "\n]\n";
}

std::string eventnet::formatDouble(double V, int Digits) {
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}
