//===- support/Table.cpp - Plain-text table/CSV output --------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>
#include <ostream>

using namespace eventnet;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

void TextTable::addRow(std::initializer_list<std::string> Row) {
  addRow(std::vector<std::string>(Row));
}

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 != Row.size())
        OS << std::string(Widths[C] - Row[C].size() + 2, ' ');
    }
    OS << '\n';
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  OS << std::string(Total > 2 ? Total - 2 : Total, '-') << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void TextTable::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 != Row.size())
        OS << ',';
    }
    OS << '\n';
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string eventnet::formatDouble(double V, int Digits) {
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}
