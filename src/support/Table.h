//===- support/Table.h - Plain-text table/CSV output ------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TextTable: tiny column-aligned table printer used by the benchmark
/// harnesses to emit the rows/series corresponding to the paper's tables
/// and figures. Also emits CSV for downstream plotting.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SUPPORT_TABLE_H
#define EVENTNET_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace eventnet {

/// Column-aligned plain-text table with an optional CSV rendering.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Convenience: formats each cell with to-string-like semantics.
  void addRow(std::initializer_list<std::string> Row);

  /// Renders the table with aligned columns to \p OS.
  void print(std::ostream &OS) const;

  /// Renders the table as CSV to \p OS.
  void printCsv(std::ostream &OS) const;

  /// Renders the table as a JSON array of row objects keyed by the
  /// header; numeric-looking cells are emitted unquoted. The benchmark
  /// harnesses use this for machine-readable results.
  void printJson(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with \p Digits fractional digits.
std::string formatDouble(double V, int Digits = 2);

} // namespace eventnet

#endif // EVENTNET_SUPPORT_TABLE_H
