//===- support/BitSet.h - Dense dynamic bit set ----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DenseBitSet: a small, value-semantics bit set used to represent sets of
/// NES events throughout the runtime (switch registers, packet digests,
/// event-set tags). Event ids are dense small integers, so a word-packed
/// representation keeps set union -- the hot operation in the Figure 7
/// SWITCH rule -- branch-free per word.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SUPPORT_BITSET_H
#define EVENTNET_SUPPORT_BITSET_H

#include "support/Ids.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace eventnet {

/// A dynamically-sized dense bit set with value semantics.
///
/// Trailing zero words are kept normalized away so that equality and
/// hashing are structural regardless of how a set was built.
class DenseBitSet {
public:
  DenseBitSet() = default;

  /// Returns the singleton set {Bit}.
  static DenseBitSet single(unsigned Bit) {
    DenseBitSet S;
    S.set(Bit);
    return S;
  }

  /// Inserts \p Bit.
  void set(unsigned Bit) {
    unsigned Word = Bit / 64;
    if (Word >= Words.size())
      Words.resize(Word + 1, 0);
    Words[Word] |= (uint64_t(1) << (Bit % 64));
  }

  /// Removes every member, keeping the allocated capacity (the engine's
  /// hot loop reuses scratch sets across packets).
  void clear() { Words.clear(); }

  /// Removes \p Bit.
  void reset(unsigned Bit) {
    unsigned Word = Bit / 64;
    if (Word >= Words.size())
      return;
    Words[Word] &= ~(uint64_t(1) << (Bit % 64));
    normalize();
  }

  /// Returns true if \p Bit is a member.
  bool test(unsigned Bit) const {
    unsigned Word = Bit / 64;
    if (Word >= Words.size())
      return false;
    return (Words[Word] >> (Bit % 64)) & 1;
  }

  /// Set union, in place.
  DenseBitSet &operator|=(const DenseBitSet &O) {
    if (O.Words.size() > Words.size())
      Words.resize(O.Words.size(), 0);
    for (size_t I = 0; I != O.Words.size(); ++I)
      Words[I] |= O.Words[I];
    return *this;
  }

  /// Set intersection, in place.
  DenseBitSet &operator&=(const DenseBitSet &O) {
    if (Words.size() > O.Words.size())
      Words.resize(O.Words.size());
    for (size_t I = 0; I != Words.size(); ++I)
      Words[I] &= O.Words[I];
    normalize();
    return *this;
  }

  friend DenseBitSet operator|(DenseBitSet A, const DenseBitSet &B) {
    A |= B;
    return A;
  }
  friend DenseBitSet operator&(DenseBitSet A, const DenseBitSet &B) {
    A &= B;
    return A;
  }

  /// Returns true if this set is a subset of \p O (improper subsets count).
  bool isSubsetOf(const DenseBitSet &O) const {
    if (Words.size() > O.Words.size())
      return false;
    for (size_t I = 0; I != Words.size(); ++I)
      if (Words[I] & ~O.Words[I])
        return false;
    return true;
  }

  /// Returns true if no bit is set.
  bool empty() const { return Words.empty(); }

  /// Number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// Invokes \p Fn(bit) for every member, in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t W = Words[I];
      while (W) {
        unsigned Bit = static_cast<unsigned>(I * 64) + __builtin_ctzll(W);
        Fn(Bit);
        W &= W - 1;
      }
    }
  }

  /// Members as a sorted vector (convenience for tests and printing).
  std::vector<unsigned> toVector() const {
    std::vector<unsigned> V;
    forEach([&V](unsigned B) { V.push_back(B); });
    return V;
  }

  friend bool operator==(const DenseBitSet &A, const DenseBitSet &B) {
    return A.Words == B.Words;
  }
  friend bool operator!=(const DenseBitSet &A, const DenseBitSet &B) {
    return !(A == B);
  }
  friend bool operator<(const DenseBitSet &A, const DenseBitSet &B) {
    return A.Words < B.Words;
  }

  size_t hash() const {
    size_t H = 0x42;
    for (uint64_t W : Words)
      H = hashCombine(H, std::hash<uint64_t>()(W));
    return H;
  }

private:
  void normalize() {
    while (!Words.empty() && Words.back() == 0)
      Words.pop_back();
  }

  std::vector<uint64_t> Words;
};

} // namespace eventnet

template <> struct std::hash<eventnet::DenseBitSet> {
  size_t operator()(const eventnet::DenseBitSet &S) const { return S.hash(); }
};

#endif // EVENTNET_SUPPORT_BITSET_H
