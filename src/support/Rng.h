//===- support/Rng.h - Deterministic PRNG -----------------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic PRNG. Every randomized component of the
/// repository (workload generators, the uncoordinated baseline's update
/// shuffling, property tests) takes an explicit Rng so that experiments
/// are reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SUPPORT_RNG_H
#define EVENTNET_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace eventnet {

/// Deterministic 64-bit PRNG (SplitMix64 core).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Rejection-free modulo is fine here: Bound is tiny in practice and
    // determinism matters more than the negligible modulo bias.
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability \p P.
  bool chance(double P) { return unit() < P; }

  /// Fisher-Yates shuffle of \p V.
  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[below(I)]);
  }

private:
  uint64_t State;
};

} // namespace eventnet

#endif // EVENTNET_SUPPORT_RNG_H
