//===- support/Ids.h - Basic identifier types -----------------*- C++ -*-===//
//
// Part of the eventnet project: a reproduction of "Event-Driven Network
// Programming" (McClurg, Hojjat, Foster, Cerny; PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, trivially-copyable identifier types shared by every module:
/// switches, ports, hosts, packet fields, and numeric field values.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SUPPORT_IDS_H
#define EVENTNET_SUPPORT_IDS_H

#include <cstdint>
#include <functional>

namespace eventnet {

/// Identifies a switch in the topology. Hosts are modeled as switches that
/// source and sink packets (see the paper, Section 2 "Preliminaries"), but
/// we keep a separate HostId type for clarity at API boundaries.
using SwitchId = uint32_t;

/// Identifies a port on a switch. Ports are switch-local.
using PortId = uint32_t;

/// Identifies a host. Host ids live in a separate namespace from switches.
using HostId = uint32_t;

/// Identifies an interned packet header field (see support/Symbols.h).
using FieldId = uint16_t;

/// A numeric field value. The paper's packet model is a record of numeric
/// fields; 64 bits is enough for any encoding we use (IPs, tags, ports).
using Value = int64_t;

/// A location is a switch-port pair `sw:pt` (paper Section 2).
struct Location {
  SwitchId Sw = 0;
  PortId Pt = 0;

  friend bool operator==(const Location &A, const Location &B) {
    return A.Sw == B.Sw && A.Pt == B.Pt;
  }
  friend bool operator!=(const Location &A, const Location &B) {
    return !(A == B);
  }
  friend bool operator<(const Location &A, const Location &B) {
    if (A.Sw != B.Sw)
      return A.Sw < B.Sw;
    return A.Pt < B.Pt;
  }
};

/// Combines a hash seed with a new value (boost::hash_combine flavor).
inline size_t hashCombine(size_t Seed, size_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

} // namespace eventnet

template <> struct std::hash<eventnet::Location> {
  size_t operator()(const eventnet::Location &L) const {
    return eventnet::hashCombine(std::hash<uint32_t>()(L.Sw),
                                 std::hash<uint32_t>()(L.Pt));
  }
};

#endif // EVENTNET_SUPPORT_IDS_H
