//===- support/Symbols.cpp - Interned field names -------------------------===//

#include "support/Symbols.h"

#include <cassert>

using namespace eventnet;

FieldTable::FieldTable() {
  // Reserved location fields must occupy ids 0 and 1 (see Symbols.h).
  Names.push_back("sw");
  Names.push_back("pt");
}

FieldTable &FieldTable::get() {
  static FieldTable Table;
  return Table;
}

FieldId FieldTable::intern(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t I = 0; I != Names.size(); ++I)
    if (Names[I] == Name)
      return static_cast<FieldId>(I);
  Names.push_back(Name);
  return static_cast<FieldId>(Names.size() - 1);
}

FieldId FieldTable::lookup(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t I = 0; I != Names.size(); ++I)
    if (Names[I] == Name)
      return static_cast<FieldId>(I);
  return static_cast<FieldId>(-1);
}

const std::string &FieldTable::name(FieldId Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(Id < Names.size() && "field id was never interned");
  return Names[Id];
}

size_t FieldTable::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Names.size();
}

FieldId eventnet::fieldOf(const std::string &Name) {
  return FieldTable::get().intern(Name);
}

const std::string &eventnet::fieldName(FieldId Id) {
  return FieldTable::get().name(Id);
}
