//===- fdd/Fdd.h - Forwarding decision diagrams -----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forwarding decision diagrams (FDDs), the core data structure of the
/// NetKAT local compiler (Smolka et al., "A Fast Compiler for NetKAT",
/// ICFP 2015), which is the compiler the paper's prototype interfaces
/// with to turn per-state configurations into flow tables.
///
/// An FDD is a rooted DAG whose internal nodes test `field = value` (hi =
/// test passed, lo = failed) and whose leaves are *action sets*: sets of
/// field-write sequences (the empty set is drop; the set containing the
/// empty sequence is the identity). Nodes are hash-consed, so structural
/// equality is pointer (NodeId) equality — this is what makes the Kleene
/// star fixpoint detectable in O(1) per iteration.
///
/// Canonical ordering invariants (checked in debug builds):
///  - fields never decrease from parent to child;
///  - the hi child of a test on field f contains no further f tests;
///  - along a lo chain, tests on the same field have increasing values.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_FDD_FDD_H
#define EVENTNET_FDD_FDD_H

#include "flowtable/FlowTable.h"
#include "netkat/Ast.h"
#include "support/Ids.h"

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace eventnet {
namespace fdd {

/// Index of a node inside an FddManager. Ids are stable for the lifetime
/// of the manager.
using NodeId = uint32_t;

/// A set of action sequences (leaf payload). Empty = drop; {[]} = skip.
using ActionSet = std::set<flowtable::ActionSeq>;

/// The (field, value) key of an internal test node.
struct TestKey {
  FieldId F = 0;
  Value V = 0;
  friend bool operator==(const TestKey &A, const TestKey &B) {
    return A.F == B.F && A.V == B.V;
  }
  friend bool operator<(const TestKey &A, const TestKey &B) {
    if (A.F != B.F)
      return A.F < B.F;
    return A.V < B.V;
  }
};

/// Owner of all FDD nodes plus the compiler from NetKAT policies.
///
/// All NodeIds returned by any method belong to this manager and remain
/// valid until it is destroyed.
class FddManager {
public:
  FddManager();

  /// The drop leaf (empty action set).
  NodeId dropLeaf() const { return Drop; }
  /// The identity leaf ({[]}).
  NodeId idLeaf() const { return Id; }

  /// Interns a leaf with the given action set.
  NodeId makeLeaf(ActionSet Acts);

  /// Interns a test node, collapsing hi == lo. Checks ordering invariants
  /// in debug builds.
  NodeId makeTest(TestKey K, NodeId Hi, NodeId Lo);

  /// Structure accessors.
  bool isLeaf(NodeId N) const { return Nodes[N].IsLeaf; }
  const ActionSet &leafActions(NodeId N) const;
  TestKey testKey(NodeId N) const;
  NodeId hi(NodeId N) const;
  NodeId lo(NodeId N) const;

  /// p + q on diagrams.
  NodeId unionFdd(NodeId A, NodeId B);

  /// p ; q on diagrams.
  NodeId seqFdd(NodeId A, NodeId B);

  /// p* on diagrams (least fixpoint of x = 1 + p;x).
  NodeId starFdd(NodeId A);

  /// Compiles predicate \p P to a 0/1 diagram (leaves drop / id).
  NodeId fromPred(const netkat::PredRef &P);

  /// Complement of a 0/1 predicate diagram.
  NodeId notFdd(NodeId A);

  /// Canonicalization pass for the equivalence procedure: removes
  /// action writes that are the identity under their path constraints
  /// (e.g. `f=1; f<-1` normalizes to `f=1`). Not applied during
  /// compilation — table extraction keeps the writes, which is harmless
  /// — but applied to both sides before comparing diagrams.
  NodeId canonicalizeWrites(NodeId N);

  /// Compiles a policy to a diagram. Links compile to
  /// `filter(at src); sw:=dst.sw; pt:=dst.pt` so whole-network relations
  /// can be represented; per-switch compilation should run the path
  /// splitter first so no sw writes reach switch tables.
  NodeId compile(const netkat::PolicyRef &P);

  /// Builds a diagram with exactly the first-match semantics of \p T:
  /// evaluate(fromTable(T), Pkt) is the action set of T's first matching
  /// rule (empty on a miss or an explicit drop). Inverse of toTable up to
  /// equivalence; the engine's match-pipeline lowering flattens the
  /// result into a contiguous decision tree for its lookup fast path.
  NodeId fromTable(const flowtable::Table &T);

  /// Specializes \p N under the assumption field \p F == \p V, removing
  /// all tests on F.
  NodeId restrictEq(NodeId N, FieldId F, Value V);

  /// Specializes \p N under the assumption field \p F != \p V, removing
  /// tests on exactly (F, V).
  NodeId restrictNeq(NodeId N, FieldId F, Value V);

  /// Evaluates the diagram on a packet (reference semantics for tests).
  ActionSet evaluate(NodeId N, const netkat::Packet &Pkt) const;

  /// Extracts a prioritized flow table. Every root-to-leaf path emits one
  /// rule (including explicit drops, which are required for the
  /// first-match shadowing argument); hi-first emission order makes
  /// first-match semantics coincide with the diagram.
  flowtable::Table toTable(NodeId N) const;

  /// Per-switch table: specializes on sw == \p Sw, then extracts a table
  /// over the remaining fields. Asserts that no sw writes remain.
  flowtable::Table toSwitchTable(NodeId N, SwitchId Sw);

  /// Number of distinct nodes allocated (for benchmarks).
  size_t numNodes() const { return Nodes.size(); }

  /// Multi-line dump for debugging.
  std::string str(NodeId N) const;

private:
  struct Node {
    bool IsLeaf = false;
    TestKey K{};
    NodeId Hi = 0, Lo = 0;
    ActionSet Acts; // only for leaves
  };

  enum class BinOp { Union, Intersect, Gate };

  /// Key of a test node used by the smallest test appearing in either
  /// operand of a binary merge (+infinity for leaves).
  TestKey rootKey(NodeId N) const;
  bool hasRootKey(NodeId N) const { return !Nodes[N].IsLeaf; }

  NodeId cofactorPos(NodeId N, TestKey K);
  NodeId cofactorNeg(NodeId N, TestKey K);

  /// Removes writes K.F := K.V from every leaf of \p N (used on hi
  /// children, where the path already guarantees K.F == K.V).
  NodeId stripRedundantWrite(NodeId N, TestKey K);

  NodeId mergeApply(NodeId A, NodeId B, BinOp Op);
  ActionSet applyOp(const ActionSet &A, const ActionSet &B, BinOp Op) const;

  /// Ordered if-then-else: union of (test K gating Hi) and (not-test K
  /// gating Lo); restores canonical ordering when Hi/Lo were built from
  /// diagrams with smaller keys.
  NodeId ite(TestKey K, NodeId Hi, NodeId Lo);

  /// Sequencing helpers.
  struct SeqCtx {
    std::map<FieldId, Value> Eq;
    std::set<std::pair<FieldId, Value>> Neq;
  };
  NodeId seqRec(NodeId A, NodeId B, SeqCtx &Ctx);
  NodeId applySeqAction(const flowtable::ActionSeq &Alpha, NodeId B,
                        const SeqCtx &Ctx);

  void tableRec(NodeId N, flowtable::Match &M, int &Priority,
                std::vector<flowtable::Rule> &Out) const;

  std::vector<Node> Nodes;
  NodeId Drop = 0, Id = 0;

  std::map<ActionSet, NodeId> LeafIntern;

  struct TestInternKey {
    TestKey K;
    NodeId Hi, Lo;
    friend bool operator<(const TestInternKey &A, const TestInternKey &B) {
      if (!(A.K == B.K))
        return A.K < B.K;
      if (A.Hi != B.Hi)
        return A.Hi < B.Hi;
      return A.Lo < B.Lo;
    }
  };
  std::map<TestInternKey, NodeId> TestIntern;

  struct MergeKey {
    uint8_t Op;
    NodeId A, B;
    friend bool operator<(const MergeKey &X, const MergeKey &Y) {
      if (X.Op != Y.Op)
        return X.Op < Y.Op;
      if (X.A != Y.A)
        return X.A < Y.A;
      return X.B < Y.B;
    }
  };
  std::map<MergeKey, NodeId> MergeCache;
};

} // namespace fdd
} // namespace eventnet

#endif // EVENTNET_FDD_FDD_H
