//===- fdd/Equiv.cpp    - NetKAT equivalence decision procedure -----------===//

#include "fdd/Equiv.h"

#include "fdd/Fdd.h"

using namespace eventnet;
using namespace eventnet::netkat;

bool netkat::equivalent(const PolicyRef &P, const PolicyRef &Q) {
  fdd::FddManager M;
  return M.canonicalizeWrites(M.compile(P)) ==
         M.canonicalizeWrites(M.compile(Q));
}

bool netkat::lessOrEqual(const PolicyRef &P, const PolicyRef &Q) {
  fdd::FddManager M;
  fdd::NodeId Dp = M.canonicalizeWrites(M.compile(P));
  fdd::NodeId Dq = M.canonicalizeWrites(M.compile(Q));
  return M.canonicalizeWrites(M.unionFdd(Dp, Dq)) == Dq;
}

bool netkat::isEmpty(const PolicyRef &P) {
  fdd::FddManager M;
  return M.compile(P) == M.dropLeaf();
}

bool netkat::equivalentPred(const PredRef &A, const PredRef &B) {
  fdd::FddManager M;
  return M.fromPred(A) == M.fromPred(B);
}
