//===- fdd/Equiv.h    - NetKAT equivalence decision procedure ---*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decision procedure for equivalence of link-free NetKAT policies,
/// via canonical FDDs: two policies are equivalent iff they compile to
/// the same hash-consed diagram. This is the fragment of NetKAT's sound
/// and complete equational theory (Anderson et al., POPL 2014) that the
/// paper's per-state configurations live in, and is what "Stateful
/// NetKAT preserves the existing equational theory of the individual
/// static configurations" (Section 3.2) refers to.
///
/// Policies containing links are handled by rewriting each link into
/// its located-transfer form (filter at source; write destination), so
/// whole-configuration relations can also be compared.
///
/// The functions live in namespace netkat (they are operations on the
/// NetKAT algebra) but are housed in the fdd library, whose diagrams
/// implement them.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_FDD_EQUIV_H
#define EVENTNET_FDD_EQUIV_H

#include "netkat/Ast.h"

namespace eventnet {
namespace netkat {

/// Decides p ≡ q (equal packet-set semantics on every input).
bool equivalent(const PolicyRef &P, const PolicyRef &Q);

/// Decides p ≤ q (p's outputs are always a subset of q's), i.e.
/// p + q ≡ q.
bool lessOrEqual(const PolicyRef &P, const PolicyRef &Q);

/// Decides whether p drops every packet (p ≡ drop).
bool isEmpty(const PolicyRef &P);

/// Decides a ≡ b for predicates.
bool equivalentPred(const PredRef &A, const PredRef &B);

} // namespace netkat
} // namespace eventnet

#endif // EVENTNET_FDD_EQUIV_H
