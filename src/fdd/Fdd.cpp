//===- fdd/Fdd.cpp - Forwarding decision diagrams -------------------------===//

#include "fdd/Fdd.h"

#include "netkat/Eval.h"

#include <cassert>
#include <optional>
#include <sstream>

using namespace eventnet;
using namespace eventnet::fdd;
using eventnet::flowtable::ActionSeq;
using eventnet::flowtable::Match;
using eventnet::flowtable::Rule;
using eventnet::flowtable::Table;
using eventnet::netkat::Packet;
using eventnet::netkat::Policy;
using eventnet::netkat::Pred;

FddManager::FddManager() {
  Drop = makeLeaf(ActionSet{});
  Id = makeLeaf(ActionSet{ActionSeq{}});
}

//===----------------------------------------------------------------------===//
// Node construction and accessors
//===----------------------------------------------------------------------===//

NodeId FddManager::makeLeaf(ActionSet Acts) {
  auto It = LeafIntern.find(Acts);
  if (It != LeafIntern.end())
    return It->second;
  Node N;
  N.IsLeaf = true;
  N.Acts = Acts;
  Nodes.push_back(std::move(N));
  NodeId Id = static_cast<NodeId>(Nodes.size() - 1);
  LeafIntern.emplace(std::move(Acts), Id);
  return Id;
}

NodeId FddManager::canonicalizeWrites(NodeId N) {
  if (isLeaf(N))
    return N;
  TestKey K = testKey(N);
  NodeId Hi = canonicalizeWrites(stripRedundantWrite(hi(N), K));
  NodeId Lo = canonicalizeWrites(lo(N));
  return makeTest(K, Hi, Lo);
}

NodeId FddManager::stripRedundantWrite(NodeId N, TestKey K) {
  // Under the path constraint K.F == K.V, an action write K.F := K.V is
  // the identity; removing it makes e.g. `f=1; f<-1` and `f=1` compile
  // to the same diagram (completeness of the equivalence procedure).
  if (isLeaf(N)) {
    ActionSet Acts = leafActions(N);
    ActionSet Stripped;
    bool Changed = false;
    for (const flowtable::ActionSeq &A : Acts) {
      flowtable::ActionSeq Out;
      for (const auto &[F, V] : A) {
        if (F == K.F && V == K.V) {
          Changed = true;
          continue;
        }
        Out.push_back({F, V});
      }
      Stripped.insert(std::move(Out));
    }
    return Changed ? makeLeaf(std::move(Stripped)) : N;
  }
  TestKey NK = testKey(N);
  NodeId Hi = stripRedundantWrite(hi(N), K);
  NodeId Lo = stripRedundantWrite(lo(N), K);
  return makeTest(NK, Hi, Lo);
}

NodeId FddManager::makeTest(TestKey K, NodeId Hi, NodeId Lo) {
  if (Hi == Lo)
    return Hi;
#ifndef NDEBUG
  // Canonical ordering invariants (see the file header).
  auto ChildOk = [&](NodeId C, bool IsHi) {
    if (isLeaf(C))
      return true;
    TestKey CK = testKey(C);
    if (CK.F > K.F)
      return true;
    if (CK.F < K.F)
      return false;
    return !IsHi && CK.V > K.V;
  };
  assert(ChildOk(Hi, true) && "hi child violates FDD ordering");
  assert(ChildOk(Lo, false) && "lo child violates FDD ordering");
#endif
  TestInternKey IK{K, Hi, Lo};
  auto It = TestIntern.find(IK);
  if (It != TestIntern.end())
    return It->second;
  Node N;
  N.IsLeaf = false;
  N.K = K;
  N.Hi = Hi;
  N.Lo = Lo;
  Nodes.push_back(std::move(N));
  NodeId Id = static_cast<NodeId>(Nodes.size() - 1);
  TestIntern.emplace(IK, Id);
  return Id;
}

const ActionSet &FddManager::leafActions(NodeId N) const {
  assert(Nodes[N].IsLeaf && "leafActions on internal node");
  return Nodes[N].Acts;
}

TestKey FddManager::testKey(NodeId N) const {
  assert(!Nodes[N].IsLeaf && "testKey on leaf");
  return Nodes[N].K;
}

NodeId FddManager::hi(NodeId N) const {
  assert(!Nodes[N].IsLeaf);
  return Nodes[N].Hi;
}

NodeId FddManager::lo(NodeId N) const {
  assert(!Nodes[N].IsLeaf);
  return Nodes[N].Lo;
}

TestKey FddManager::rootKey(NodeId N) const {
  assert(!Nodes[N].IsLeaf && "rootKey on leaf");
  return Nodes[N].K;
}

//===----------------------------------------------------------------------===//
// Cofactors and binary merge
//===----------------------------------------------------------------------===//

NodeId FddManager::cofactorPos(NodeId N, TestKey K) {
  if (isLeaf(N))
    return N;
  TestKey NK = testKey(N);
  if (NK.F > K.F)
    return N;
  assert(NK.F == K.F && "merge key was not minimal");
  if (NK.V == K.V)
    return hi(N);
  assert(NK.V > K.V && "merge key was not minimal");
  // Under F == K.V this test (F == NK.V) is false.
  return cofactorPos(lo(N), K);
}

NodeId FddManager::cofactorNeg(NodeId N, TestKey K) {
  if (isLeaf(N))
    return N;
  if (testKey(N) == K)
    return lo(N);
  // K is minimal among root keys, so no (K.F, K.V) test occurs below.
  return N;
}

ActionSet FddManager::applyOp(const ActionSet &A, const ActionSet &B,
                              BinOp Op) const {
  switch (Op) {
  case BinOp::Union: {
    ActionSet Out = A;
    Out.insert(B.begin(), B.end());
    return Out;
  }
  case BinOp::Intersect: {
    ActionSet Out;
    for (const ActionSeq &S : A)
      if (B.count(S))
        Out.insert(S);
    return Out;
  }
  case BinOp::Gate:
    return A.empty() ? ActionSet{} : B;
  }
  return {};
}

NodeId FddManager::mergeApply(NodeId A, NodeId B, BinOp Op) {
  // Cheap algebraic fast paths.
  if (Op == BinOp::Union) {
    if (A == B)
      return A;
    if (A == Drop)
      return B;
    if (B == Drop)
      return A;
  } else if (Op == BinOp::Intersect) {
    if (A == B)
      return A;
    if (A == Drop || B == Drop)
      return Drop;
  } else if (Op == BinOp::Gate) {
    if (A == Drop || B == Drop)
      return Drop;
    if (A == Id)
      return B;
  }

  if (isLeaf(A) && isLeaf(B))
    return makeLeaf(applyOp(leafActions(A), leafActions(B), Op));

  MergeKey CK{static_cast<uint8_t>(Op), A, B};
  auto It = MergeCache.find(CK);
  if (It != MergeCache.end())
    return It->second;

  TestKey K;
  bool HasK = false;
  if (!isLeaf(A)) {
    K = testKey(A);
    HasK = true;
  }
  if (!isLeaf(B)) {
    TestKey BK = testKey(B);
    if (!HasK || BK < K)
      K = BK;
  }

  NodeId Hi = mergeApply(cofactorPos(A, K), cofactorPos(B, K), Op);
  NodeId Lo = mergeApply(cofactorNeg(A, K), cofactorNeg(B, K), Op);
  NodeId R = makeTest(K, Hi, Lo);
  MergeCache.emplace(CK, R);
  return R;
}

NodeId FddManager::unionFdd(NodeId A, NodeId B) {
  // Union is commutative; normalize the cache key.
  if (B < A)
    std::swap(A, B);
  return mergeApply(A, B, BinOp::Union);
}

NodeId FddManager::ite(TestKey K, NodeId Hi, NodeId Lo) {
  if (Hi == Lo)
    return Hi;
  NodeId Pos = makeTest(K, Id, Drop);
  NodeId Neg = makeTest(K, Drop, Id);
  return unionFdd(mergeApply(Pos, Hi, BinOp::Gate),
                  mergeApply(Neg, Lo, BinOp::Gate));
}

//===----------------------------------------------------------------------===//
// Predicates
//===----------------------------------------------------------------------===//

NodeId FddManager::fromPred(const netkat::PredRef &P) {
  switch (P->kind()) {
  case Pred::Kind::True:
    return Id;
  case Pred::Kind::False:
    return Drop;
  case Pred::Kind::Test:
    return makeTest(TestKey{P->testField(), P->testValue()}, Id, Drop);
  case Pred::Kind::And:
    return mergeApply(fromPred(P->lhs()), fromPred(P->rhs()),
                      BinOp::Intersect);
  case Pred::Kind::Or:
    return unionFdd(fromPred(P->lhs()), fromPred(P->rhs()));
  case Pred::Kind::Not:
    return notFdd(fromPred(P->negand()));
  }
  return Drop;
}

NodeId FddManager::notFdd(NodeId A) {
  if (isLeaf(A)) {
    const ActionSet &Acts = leafActions(A);
    assert((Acts.empty() || (Acts.size() == 1 && Acts.begin()->empty())) &&
           "complement of a non-predicate diagram");
    return Acts.empty() ? Id : Drop;
  }
  TestKey K = testKey(A);
  NodeId Hi = notFdd(hi(A));
  NodeId Lo = notFdd(lo(A));
  return makeTest(K, Hi, Lo);
}

//===----------------------------------------------------------------------===//
// Sequencing
//===----------------------------------------------------------------------===//

NodeId FddManager::applySeqAction(const ActionSeq &Alpha, NodeId B,
                                  const SeqCtx &Ctx) {
  if (isLeaf(B)) {
    ActionSet Out;
    // Copy out: makeLeaf below may reallocate the node pool.
    ActionSet Betas = leafActions(B);
    for (const ActionSeq &Beta : Betas) {
      std::vector<std::pair<FieldId, Value>> Writes(Alpha.begin(),
                                                    Alpha.end());
      Writes.insert(Writes.end(), Beta.begin(), Beta.end());
      Out.insert(flowtable::normalizeActionSeq(Writes));
    }
    return makeLeaf(std::move(Out));
  }

  TestKey K = testKey(B);
  // Resolve the test against pending writes first, then path context.
  for (const auto &[F, V] : Alpha)
    if (F == K.F)
      return applySeqAction(Alpha, V == K.V ? hi(B) : lo(B), Ctx);
  auto EqIt = Ctx.Eq.find(K.F);
  if (EqIt != Ctx.Eq.end())
    return applySeqAction(Alpha, EqIt->second == K.V ? hi(B) : lo(B), Ctx);
  if (Ctx.Neq.count({K.F, K.V}))
    return applySeqAction(Alpha, lo(B), Ctx);

  NodeId Hi = applySeqAction(Alpha, hi(B), Ctx);
  NodeId Lo = applySeqAction(Alpha, lo(B), Ctx);
  return makeTest(K, Hi, Lo);
}

NodeId FddManager::seqRec(NodeId A, NodeId B, SeqCtx &Ctx) {
  if (isLeaf(A)) {
    // Copy out: applySeqAction below may reallocate the node pool.
    ActionSet Alphas = leafActions(A);
    if (Alphas.empty())
      return Drop;
    NodeId Acc = Drop;
    for (const ActionSeq &Alpha : Alphas)
      Acc = unionFdd(Acc, applySeqAction(Alpha, B, Ctx));
    return Acc;
  }

  TestKey K = testKey(A);

  // hi branch: the path pins K.F == K.V.
  auto SavedEq = Ctx.Eq.find(K.F) != Ctx.Eq.end()
                     ? std::optional<Value>(Ctx.Eq[K.F])
                     : std::nullopt;
  Ctx.Eq[K.F] = K.V;
  NodeId Hi = seqRec(hi(A), B, Ctx);
  if (SavedEq)
    Ctx.Eq[K.F] = *SavedEq;
  else
    Ctx.Eq.erase(K.F);

  // lo branch: the path pins K.F != K.V.
  Ctx.Neq.insert({K.F, K.V});
  NodeId Lo = seqRec(lo(A), B, Ctx);
  Ctx.Neq.erase({K.F, K.V});

  return ite(K, Hi, Lo);
}

NodeId FddManager::seqFdd(NodeId A, NodeId B) {
  SeqCtx Ctx;
  return seqRec(A, B, Ctx);
}

//===----------------------------------------------------------------------===//
// Star
//===----------------------------------------------------------------------===//

NodeId FddManager::starFdd(NodeId A) {
  // Least fixpoint of X = 1 + A;X. Hash consing makes the convergence
  // check O(1). The iteration count is bounded by the length of the
  // longest simple chain of distinct packet rewrites, which is tiny for
  // any real policy; the cap guards against a non-converging diagram bug.
  NodeId Acc = Id;
  for (unsigned Iter = 0; Iter != 10000; ++Iter) {
    NodeId Next = unionFdd(Id, seqFdd(A, Acc));
    if (Next == Acc)
      return Acc;
    Acc = Next;
  }
  assert(false && "FDD star failed to converge");
  return Acc;
}

//===----------------------------------------------------------------------===//
// Policy compilation
//===----------------------------------------------------------------------===//

NodeId FddManager::compile(const netkat::PolicyRef &P) {
  switch (P->kind()) {
  case Policy::Kind::Filter:
    return fromPred(P->pred());
  case Policy::Kind::Mod:
    return makeLeaf(ActionSet{ActionSeq{{P->modField(), P->modValue()}}});
  case Policy::Kind::Union:
    return unionFdd(compile(P->lhs()), compile(P->rhs()));
  case Policy::Kind::Seq:
    return seqFdd(compile(P->lhs()), compile(P->rhs()));
  case Policy::Kind::Star:
    return starFdd(compile(P->body()));
  case Policy::Kind::Link: {
    Location Src = P->linkSrc(), Dst = P->linkDst();
    NodeId At = fromPred(netkat::pAt(Src));
    ActionSeq Writes = flowtable::normalizeActionSeq(
        {{FieldSw, static_cast<Value>(Dst.Sw)},
         {FieldPt, static_cast<Value>(Dst.Pt)}});
    return seqFdd(At, makeLeaf(ActionSet{Writes}));
  }
  }
  return Drop;
}

NodeId FddManager::fromTable(const flowtable::Table &T) {
  // Fold from the lowest-priority rule upward: each rule gates its own
  // actions on its pattern and defers to the accumulated lower rules on
  // the complement, which is exactly first-match semantics.
  NodeId Acc = Drop; // table miss
  const std::vector<flowtable::Rule> &Rules = T.rules();
  for (size_t I = Rules.size(); I-- > 0;) {
    const flowtable::Rule &R = Rules[I];
    NodeId P = Id;
    for (const auto &[F, V] : R.Pattern.constraints())
      P = mergeApply(P, makeTest(TestKey{F, V}, Id, Drop), BinOp::Intersect);
    ActionSet Acts(R.Actions.begin(), R.Actions.end());
    Acc = unionFdd(mergeApply(P, makeLeaf(std::move(Acts)), BinOp::Gate),
                   mergeApply(notFdd(P), Acc, BinOp::Gate));
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// Restriction
//===----------------------------------------------------------------------===//

NodeId FddManager::restrictEq(NodeId N, FieldId F, Value V) {
  if (isLeaf(N))
    return N;
  TestKey K = testKey(N);
  if (K.F > F)
    return N; // fields ascend: no F tests below
  if (K.F == F) {
    if (K.V == V)
      return hi(N); // hi contains no further F tests
    return restrictEq(lo(N), F, V);
  }
  NodeId Hi = restrictEq(hi(N), F, V);
  NodeId Lo = restrictEq(lo(N), F, V);
  return makeTest(K, Hi, Lo);
}

NodeId FddManager::restrictNeq(NodeId N, FieldId F, Value V) {
  if (isLeaf(N))
    return N;
  TestKey K = testKey(N);
  if (K.F > F)
    return N;
  if (K.F == F) {
    if (K.V == V)
      return lo(N);
    NodeId Lo = restrictNeq(lo(N), F, V);
    return makeTest(K, hi(N), Lo);
  }
  NodeId Hi = restrictNeq(hi(N), F, V);
  NodeId Lo = restrictNeq(lo(N), F, V);
  return makeTest(K, Hi, Lo);
}

//===----------------------------------------------------------------------===//
// Evaluation and table extraction
//===----------------------------------------------------------------------===//

ActionSet FddManager::evaluate(NodeId N, const Packet &Pkt) const {
  while (!Nodes[N].IsLeaf) {
    const Node &Nd = Nodes[N];
    bool Pass = Pkt.has(Nd.K.F) && Pkt.get(Nd.K.F) == Nd.K.V;
    N = Pass ? Nd.Hi : Nd.Lo;
  }
  return Nodes[N].Acts;
}

void FddManager::tableRec(NodeId N, Match &M, int &Priority,
                          std::vector<Rule> &Out) const {
  if (Nodes[N].IsLeaf) {
    Rule R;
    R.Priority = Priority--;
    R.Pattern = M;
    for (const ActionSeq &A : Nodes[N].Acts)
      R.Actions.push_back(A);
    Out.push_back(std::move(R));
    return;
  }
  const Node &Nd = Nodes[N];
  // Hi side first with the positive constraint: first-match priority then
  // correctly shadows the unconstrained lo-side rules (see header).
  Match HiM = M;
  HiM.require(Nd.K.F, Nd.K.V);
  // Copy K/children out before recursion (no mutation happens, but keep
  // the pattern uniform with the mutating paths elsewhere).
  NodeId HiN = Nd.Hi, LoN = Nd.Lo;
  tableRec(HiN, HiM, Priority, Out);
  tableRec(LoN, M, Priority, Out);
}

Table FddManager::toTable(NodeId N) const {
  std::vector<Rule> Rules;
  Match M;
  int Priority = 1000000;
  tableRec(N, M, Priority, Rules);
  Table T;
  for (Rule &R : Rules)
    T.add(std::move(R));
  return T;
}

Table FddManager::toSwitchTable(NodeId N, SwitchId Sw) {
  NodeId S = restrictEq(N, FieldSw, static_cast<Value>(Sw));
  Table T = toTable(S);
#ifndef NDEBUG
  for (const Rule &R : T.rules()) {
    for (const auto &[F, V] : R.Pattern.constraints())
      assert(F != FieldSw && "sw test survived specialization");
    for (const ActionSeq &A : R.Actions)
      for (const auto &[F, V] : A)
        assert(F != FieldSw && "per-switch policy writes sw (missing path "
                               "split?)");
  }
#endif
  T.removeShadowed();
  return T;
}

//===----------------------------------------------------------------------===//
// Debug printing
//===----------------------------------------------------------------------===//

std::string FddManager::str(NodeId N) const {
  std::ostringstream OS;
  // Indented DFS dump.
  struct Frame {
    NodeId N;
    unsigned Depth;
    char Tag;
  };
  std::vector<Frame> Stack{{N, 0, 'r'}};
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    OS << std::string(F.Depth * 2, ' ') << F.Tag << ": ";
    const Node &Nd = Nodes[F.N];
    if (Nd.IsLeaf) {
      if (Nd.Acts.empty()) {
        OS << "drop\n";
        continue;
      }
      OS << '{';
      bool First = true;
      for (const ActionSeq &A : Nd.Acts) {
        if (!First)
          OS << " | ";
        First = false;
        if (A.empty())
          OS << "id";
        for (size_t I = 0; I != A.size(); ++I) {
          if (I)
            OS << ',';
          OS << fieldName(A[I].first) << ":=" << A[I].second;
        }
      }
      OS << "}\n";
      continue;
    }
    OS << fieldName(Nd.K.F) << '=' << Nd.K.V << '\n';
    Stack.push_back({Nd.Lo, F.Depth + 1, '-'});
    Stack.push_back({Nd.Hi, F.Depth + 1, '+'});
  }
  return OS.str();
}
