//===- sim/Wire.h - Host-application wire format ----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the evaluation workloads: the header fields and
/// packet-kind values the host applications speak. Shared by the
/// discrete-event simulator (sim::Simulation) and the concurrent
/// data-plane engine (engine::Engine / engine::TrafficGen) so that a
/// workload generated for one substrate replays identically on the
/// other.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SIM_WIRE_H
#define EVENTNET_SIM_WIRE_H

#include "netkat/Packet.h"
#include "support/Ids.h"

namespace eventnet {
namespace sim {

/// Values of the "kind" field.
inline constexpr Value KindRequest = 0; ///< echo request (expects a reply)
inline constexpr Value KindReply = 1;   ///< echo reply
inline constexpr Value KindData = 2;    ///< bulk-flow payload
inline constexpr Value KindAck = 3;     ///< bulk-flow acknowledgement
inline constexpr Value KindProbe = 4;   ///< event-trigger probe (no reply)

/// Field ids used by the host applications (interned on first use).
FieldId ipSrcField();
FieldId ipDstField();
FieldId kindField(); ///< one of the Kind* values above
FieldId seqField();
FieldId probeField(); ///< set to 1 on event-trigger probes

/// Builds a bare application header From -> To of the given kind.
netkat::Packet makeWireHeader(HostId From, HostId To, Value Kind,
                              uint64_t Seq);

} // namespace sim
} // namespace eventnet

#endif // EVENTNET_SIM_WIRE_H
