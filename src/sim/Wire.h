//===- sim/Wire.h - Host-application wire format ----------------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the evaluation workloads: the header fields and
/// packet-kind values the host applications speak. Shared by the
/// discrete-event simulator (sim::Simulation) and the concurrent
/// data-plane engine (engine::Engine / engine::TrafficGen) so that a
/// workload generated for one substrate replays identically on the
/// other.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SIM_WIRE_H
#define EVENTNET_SIM_WIRE_H

#include "netkat/Packet.h"
#include "support/Ids.h"

#include <cstddef>
#include <cstdint>

namespace eventnet {
namespace sim {

/// Values of the "kind" field.
inline constexpr Value KindRequest = 0; ///< echo request (expects a reply)
inline constexpr Value KindReply = 1;   ///< echo reply
inline constexpr Value KindData = 2;    ///< bulk-flow payload
inline constexpr Value KindAck = 3;     ///< bulk-flow acknowledgement
inline constexpr Value KindProbe = 4;   ///< event-trigger probe (no reply)

/// Field ids used by the host applications (interned on first use).
FieldId ipSrcField();
FieldId ipDstField();
FieldId kindField(); ///< one of the Kind* values above
FieldId seqField();
FieldId probeField(); ///< set to 1 on event-trigger probes
/// Session tag stamped by the net server on ingested frames: tables never
/// match on it, actions never rewrite it, so it rides every hop and lets
/// the delivery path route a packet back to the connection that emitted
/// it. Absent on packets that did not enter through a socket.
FieldId connField();

/// Builds a bare application header From -> To of the given kind.
netkat::Packet makeWireHeader(HostId From, HostId To, Value Kind,
                              uint64_t Seq);

//===----------------------------------------------------------------------===//
// Byte-order helpers (explicit little-endian, alignment-free)
//===----------------------------------------------------------------------===//

inline void wirePut16(uint8_t *B, uint16_t V) {
  B[0] = static_cast<uint8_t>(V);
  B[1] = static_cast<uint8_t>(V >> 8);
}
inline void wirePut32(uint8_t *B, uint32_t V) {
  B[0] = static_cast<uint8_t>(V);
  B[1] = static_cast<uint8_t>(V >> 8);
  B[2] = static_cast<uint8_t>(V >> 16);
  B[3] = static_cast<uint8_t>(V >> 24);
}
inline void wirePut64(uint8_t *B, uint64_t V) {
  wirePut32(B, static_cast<uint32_t>(V));
  wirePut32(B + 4, static_cast<uint32_t>(V >> 32));
}
inline uint16_t wireGet16(const uint8_t *B) {
  return static_cast<uint16_t>(B[0] | (B[1] << 8));
}
inline uint32_t wireGet32(const uint8_t *B) {
  return static_cast<uint32_t>(B[0]) | (static_cast<uint32_t>(B[1]) << 8) |
         (static_cast<uint32_t>(B[2]) << 16) |
         (static_cast<uint32_t>(B[3]) << 24);
}
inline uint64_t wireGet64(const uint8_t *B) {
  return static_cast<uint64_t>(wireGet32(B)) |
         (static_cast<uint64_t>(wireGet32(B + 4)) << 32);
}

//===----------------------------------------------------------------------===//
// Length-prefixed framing (the net backend's socket encoding)
//===----------------------------------------------------------------------===//

/// The socket encoding of one wire-format message: a u32 little-endian
/// payload length followed by a fixed-shape payload
///
///   u8 Type | u32 A | u32 B | u32 Kind | u64 Seq
///
/// The field meanings depend on Type (see WireFrame::Type). A stream is
/// just back-to-back frames; a UDP datagram carries one or more whole
/// frames. Decoding is incremental: decodeFrame distinguishes "feed me
/// more bytes" (a partial frame mid-reassembly) from a malformed prefix
/// (bad length, unknown type), which a session must treat as a protocol
/// error and close.
struct WireFrame {
  enum Type : uint8_t {
    /// Client -> server greeting; A = protocol version, Seq = nonce.
    Hello = 1,
    /// Server -> client; A = assigned source host, B = suggested
    /// destination host, Seq = connection id.
    HelloAck = 2,
    /// Client -> server emission: A = from host, B = to host.
    Inject = 3,
    /// Server -> client delivery echo: A = ip_src, B = ip_dst.
    Deliver = 4,
    /// Client -> server: done, drain and forget me.
    Bye = 5,
    /// Client -> server phase fence; Seq = cumulative frames the client
    /// has sent so far. Acked only once the server has ingested that
    /// many frames and the engine has quiesced.
    Barrier = 6,
    /// Server -> client; Seq echoed from the Barrier.
    BarrierAck = 7,
  };

  uint8_t T = Inject;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t Kind = 0;
  uint64_t Seq = 0;
};

/// Wire protocol version spoken by this build (Hello.A).
inline constexpr uint32_t WireProtoVersion = 1;
/// Fixed payload size of every frame type.
inline constexpr size_t WireFramePayload = 21;
/// Bytes of a complete frame on the wire (length prefix + payload).
inline constexpr size_t WireFrameBytes = 4 + WireFramePayload;
/// Decode rejects any announced payload length beyond this as hostile
/// (a corrupted or non-eventnet peer), even before the bytes arrive.
inline constexpr size_t WireMaxPayload = 64;

enum class FrameDecode {
  Ok,        ///< one frame decoded; Consumed bytes were eaten
  NeedMore,  ///< the buffer ends mid-frame; append bytes and retry
  Malformed, ///< bad length or type; the stream is unrecoverable
};

/// Encodes \p F into \p Out (at least WireFrameBytes); returns the
/// encoded size.
size_t encodeFrame(const WireFrame &F, uint8_t *Out);

/// Decodes the frame at the front of [Buf, Buf+Len). On Ok, fills \p F
/// and sets \p Consumed; otherwise Consumed is 0.
FrameDecode decodeFrame(const uint8_t *Buf, size_t Len, WireFrame &F,
                        size_t &Consumed);

/// The application header an Inject frame asks the engine to emit.
netkat::Packet frameHeader(const WireFrame &F);

/// The Deliver frame describing a packet handed to a host.
WireFrame deliverFrame(const netkat::Packet &P);

} // namespace sim
} // namespace eventnet

#endif // EVENTNET_SIM_WIRE_H
