//===- sim/Simulation.h - Discrete-event network simulator ------*- C++ -*-===//
//
// Part of the eventnet project (PLDI 2016 "Event-Driven Network
// Programming" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation substrate replacing the paper's Mininet + modified
/// OpenFlow 1.0 reference switch: a deterministic discrete-event
/// simulator with latency/bandwidth-modeled links, serialized per-switch
/// packet processing, hosts running ping/probe/bulk-flow applications,
/// and a controller.
///
/// Three runtime modes mirror the paper's comparisons:
///
///  - Nes: the Section 4 implementation. Switches keep an event-set
///    register, stamp ingress packets with the configuration tag, learn
///    from and extend packet digests, and forward with the stamped
///    configuration's (guarded) rules. Tag + digest bytes are charged to
///    every packet, which is what the Figure 16(a) bandwidth overhead
///    measures.
///
///  - Uncoordinated: the baseline of Section 5.1. Switches run exactly
///    one table; events are reported to the controller, which — after a
///    configurable delay — pushes the new configuration to switches one
///    at a time in a random order. The windows in between are what the
///    "incorrect" halves of Figures 10-15 exhibit.
///
///  - StaticReference: configuration g(∅) on unmodified switches with no
///    tags or digests (the dashed reference line of Figure 16(a)).
///
/// All randomness (baseline push order) is driven by the seed in
/// SimParams, so every experiment is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef EVENTNET_SIM_SIMULATION_H
#define EVENTNET_SIM_SIMULATION_H

#include "consistency/Trace.h"
#include "faults/Injector.h"
#include "nes/Nes.h"
#include "sim/Wire.h"
#include "support/BitSet.h"
#include "support/Rng.h"
#include "topo/Topology.h"

#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <vector>

namespace eventnet {
namespace sim {

/// Simulation parameters (times in seconds, rates in bits/second).
struct SimParams {
  double LinkLatencySec = 0.0005;      ///< per-link propagation delay
  double SwitchDelaySec = 0.00002;     ///< per-packet processing time
  double HostDelaySec = 0.00001;       ///< host reply turnaround
  double CtrlLatencySec = 0.002;       ///< switch <-> controller one way
  bool CtrlBroadcast = false;          ///< controller re-broadcasts events
  double LinkBandwidthBps = 100e6;     ///< link capacity
  double MaxQueueDelaySec = 0.02;      ///< drop-tail bound per link
  unsigned PayloadBytes = 1500;        ///< default packet size
  unsigned AckBytes = 64;              ///< ack/reply packet size
  /// Extra header bytes the Nes mode charges per packet (tag + digest);
  /// 0 = derive from the structure (2B tag + 2B shim + event bitmap).
  unsigned OverheadBytes = 0;
  /// Extra per-packet switch processing time in Nes mode, modeling the
  /// tag stamping / digest learning work of the paper's modified
  /// userspace OpenFlow switch. 0 by default; the Figure 16(a) harness
  /// sets it (together with a realistic userspace SwitchDelaySec) to
  /// reproduce the paper's single-digit-percent bandwidth overhead.
  double NesTagProcessingSec = 0;
  /// Uncoordinated mode: delay between the controller hearing about an
  /// event and the first table push.
  double UncoordDelaySec = 2.0;
  /// Uncoordinated mode: gap between consecutive per-switch pushes.
  double UncoordPerSwitchGapSec = 0.005;
  uint64_t Seed = 1;
};

/// One simulated run of a compiled program on a topology.
class Simulation {
public:
  enum class Mode { Nes, Uncoordinated, StaticReference };

  Simulation(const nes::Nes &N, const topo::Topology &Topo, Mode M,
             SimParams P = SimParams());

  //===--------------------------------------------------------------------===//
  // Traffic
  //===--------------------------------------------------------------------===//

  /// Schedules an echo request From -> To at \p At; the destination host
  /// replies automatically; success = reply received within \p Timeout.
  void schedulePing(double At, HostId From, HostId To, double Timeout = 1.0);

  /// Schedules a probe packet (field probe=1, no reply expected).
  void scheduleProbe(double At, HostId From, HostId To);

  /// Schedules a raw application header (sim/Wire.h format) to be
  /// emitted by \p From at \p At. The api façade's backend-agnostic
  /// workloads inject through this, so the simulator executes exactly
  /// the packets the other backends do; destination hosts still run the
  /// usual applications (echo replies to KindRequest, etc.).
  void scheduleInjection(double At, HostId From, netkat::Packet Header);

  /// Constant-rate (UDP-like) flow of \p Bps application throughput.
  void scheduleUdpFlow(double Start, double End, HostId From, HostId To,
                       double Bps);

  /// Window-based (TCP-like) flow: additive increase on acks,
  /// multiplicative decrease on timeout loss.
  void scheduleTcpFlow(double Start, double End, HostId From, HostId To);

  /// Runs the event loop until \p Until (simulated seconds).
  void run(double Until);

  /// Activates a compiled fault plan: link egress drop/dup/delay, the
  /// same content-addressed decisions the engine makes (faults/). The
  /// engine-only plan elements (worker stalls, queue clamps, controller
  /// storms) are no-ops here — the simulator has no worker threads or
  /// bounded rings. \p FI must outlive the simulation; null disables.
  void setFaults(const faults::Injector *FI) { Faults = FI; }

  /// Fault-injection tallies (all zero when no plan is active).
  struct FaultCounters {
    uint64_t Drops = 0;        ///< packets dropped by the plan
    uint64_t Dups = 0;         ///< packets duplicated by the plan
    uint64_t Delays = 0;       ///< packets delayed by the plan
    uint64_t DupDelivered = 0; ///< deliveries descending from a duplicate
  };
  const FaultCounters &faultCounters() const { return FC; }

  /// The fault ledger (records + trace annotations for the checker).
  const faults::FaultLedger &faultLedger() const { return Ledger; }
  faults::FaultLedger takeFaultLedger() { return std::move(Ledger); }

  //===--------------------------------------------------------------------===//
  // Results
  //===--------------------------------------------------------------------===//

  struct PingRecord {
    double SentAt = 0;
    HostId From = 0, To = 0;
    bool Succeeded = false;
    double Rtt = 0;
  };
  const std::vector<PingRecord> &pings() const { return Pings; }

  struct FlowStats {
    uint64_t PktsSent = 0;
    uint64_t PktsDelivered = 0;
    uint64_t PayloadBytesDelivered = 0;
    double FirstDelivery = 0, LastDelivery = 0;

    /// Achieved application throughput in bits/second.
    double goodputBps() const;
    /// Fraction of sent packets lost.
    double lossRate() const;
  };
  const FlowStats &flowStats() const { return Flow; }

  /// Packet deliveries (time, packet) per host.
  const std::vector<std::pair<double, netkat::Packet>> &
  deliveriesTo(HostId H) const;

  /// Time each switch first learned each event (Nes mode), for Figure
  /// 16(b). Missing key = never learned.
  const std::map<std::pair<SwitchId, nes::EventId>, double> &
  learnTimes() const {
    return LearnTimes;
  }

  /// Time each event first occurred (any mode), or -1 if it did not.
  double eventTime(nes::EventId E) const;

  /// The recorded network trace, for the consistency checkers.
  const consistency::NetworkTrace &trace() const { return Trace; }

  /// Moves the trace out (for report assembly on a dying simulation;
  /// trace() is empty afterwards).
  consistency::NetworkTrace takeTrace() { return std::move(Trace); }

  /// Total host emissions (scheduled traffic, replies, acks).
  uint64_t hostEmissions() const { return Emissions; }

  /// Total switch processing steps executed.
  uint64_t switchHops() const { return Hops; }

  double now() const { return Now; }

private:
  struct SimPacket {
    netkat::Packet Pkt;
    nes::SetId Tag = 0;
    DenseBitSet Digest;
    int TraceParent = -1;
    bool IngressLogged = false;
    unsigned PayloadBytes = 0;
    unsigned WireBytes = 0;
    uint64_t FlowSeq = 0; ///< for the bulk-flow apps
    bool FromDup = false; ///< descends from a fault-plan duplicate
  };

  struct SwitchSim {
    DenseBitSet E;                 // Nes mode register
    flowtable::Table Installed;    // Uncoordinated mode table
    double BusyUntil = 0;
  };

  struct LinkSim {
    double BusyUntil = 0;
  };

  struct TcpState {
    double Window = 2.0;
    uint64_t NextSeq = 0;
    double End = 0;
    HostId From = 0, To = 0;
    std::map<uint64_t, double> InFlight; // seq -> send time
    double RttEstimate = 0.01;
  };

  void schedule(double At, std::function<void()> Fn);
  void hostSend(HostId From, netkat::Packet Header, unsigned PayloadBytes);
  void enterSwitch(SimPacket P, double At);
  void processAtSwitch(SimPacket P);
  void egress(SimPacket P);
  void deliverToHost(HostId H, SimPacket P);
  void onEventOccurred(nes::EventId E);
  void noteSwitchLearned(SwitchId Sw, const DenseBitSet &Before,
                         const DenseBitSet &After);
  unsigned overheadBytes() const;
  netkat::Packet makeHeader(HostId From, HostId To, Value Kind,
                            uint64_t Seq);

  // TCP helpers.
  void tcpTrySend(size_t FlowIdx);
  void tcpOnAck(size_t FlowIdx, uint64_t Seq);
  void tcpOnTimeout(size_t FlowIdx, uint64_t Seq);

  const nes::Nes &N;
  const topo::Topology &Topo;
  Mode M;
  SimParams P;
  Rng Rand;

  double Now = 0;
  uint64_t EventSeq = 0;
  using QueueItem = std::tuple<double, uint64_t, std::function<void()>>;
  struct QueueCmp {
    bool operator()(const QueueItem &A, const QueueItem &B) const {
      if (std::get<0>(A) != std::get<0>(B))
        return std::get<0>(A) > std::get<0>(B);
      return std::get<1>(A) > std::get<1>(B);
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, QueueCmp> Queue;

  std::map<SwitchId, SwitchSim> Switches;
  std::map<Location, LinkSim> Links;

  // Controller state.
  DenseBitSet CtrlKnown;            // R of Figure 7
  DenseBitSet Occurred;             // events that happened (any mode)
  std::map<nes::EventId, double> EventTimes;

  // Traffic bookkeeping.
  uint64_t NextPingSeq = 1;
  std::map<uint64_t, size_t> AwaitingReply; // ping seq -> Pings index
  std::vector<PingRecord> Pings;
  FlowStats Flow;
  std::vector<TcpState> TcpFlows;
  std::map<HostId, std::vector<std::pair<double, netkat::Packet>>> Delivered;

  std::map<std::pair<SwitchId, nes::EventId>, double> LearnTimes;
  consistency::NetworkTrace Trace;
  uint64_t Emissions = 0;
  uint64_t Hops = 0;

  // Fault injection (null/empty when no plan is active). The sim's
  // trace indices are final, so the ledger's excused/dup entries are
  // recorded directly — no ticket remap as in the engine.
  const faults::Injector *Faults = nullptr;
  FaultCounters FC;
  faults::FaultLedger Ledger;
};

// The host-application field ids and packet kinds (ipSrcField,
// kindField, seqField, Kind*) live in sim/Wire.h, shared with the
// concurrent engine.

} // namespace sim
} // namespace eventnet

#endif // EVENTNET_SIM_SIMULATION_H
