//===- sim/Wire.cpp - Host-application wire format ------------------------===//

#include "sim/Wire.h"

#include "support/Symbols.h"

using namespace eventnet;
using eventnet::netkat::Packet;

FieldId sim::ipSrcField() {
  static FieldId F = fieldOf("ip_src");
  return F;
}

FieldId sim::ipDstField() {
  static FieldId F = fieldOf("ip_dst");
  return F;
}

FieldId sim::kindField() {
  static FieldId F = fieldOf("kind");
  return F;
}

FieldId sim::seqField() {
  static FieldId F = fieldOf("seq");
  return F;
}

FieldId sim::probeField() {
  static FieldId F = fieldOf("probe");
  return F;
}

Packet sim::makeWireHeader(HostId From, HostId To, Value Kind, uint64_t Seq) {
  Packet H;
  H.set(ipDstField(), static_cast<Value>(To));
  H.set(ipSrcField(), static_cast<Value>(From));
  H.set(kindField(), Kind);
  H.set(seqField(), static_cast<Value>(Seq));
  return H;
}
