//===- sim/Wire.cpp - Host-application wire format ------------------------===//

#include "sim/Wire.h"

#include "support/Symbols.h"

using namespace eventnet;
using eventnet::netkat::Packet;

FieldId sim::ipSrcField() {
  static FieldId F = fieldOf("ip_src");
  return F;
}

FieldId sim::ipDstField() {
  static FieldId F = fieldOf("ip_dst");
  return F;
}

FieldId sim::kindField() {
  static FieldId F = fieldOf("kind");
  return F;
}

FieldId sim::seqField() {
  static FieldId F = fieldOf("seq");
  return F;
}

FieldId sim::probeField() {
  static FieldId F = fieldOf("probe");
  return F;
}

FieldId sim::connField() {
  static FieldId F = fieldOf("conn");
  return F;
}

Packet sim::makeWireHeader(HostId From, HostId To, Value Kind, uint64_t Seq) {
  Packet H;
  H.set(ipDstField(), static_cast<Value>(To));
  H.set(ipSrcField(), static_cast<Value>(From));
  H.set(kindField(), Kind);
  H.set(seqField(), static_cast<Value>(Seq));
  return H;
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

size_t sim::encodeFrame(const WireFrame &F, uint8_t *Out) {
  wirePut32(Out, static_cast<uint32_t>(WireFramePayload));
  Out[4] = F.T;
  wirePut32(Out + 5, F.A);
  wirePut32(Out + 9, F.B);
  wirePut32(Out + 13, F.Kind);
  wirePut64(Out + 17, F.Seq);
  return WireFrameBytes;
}

sim::FrameDecode sim::decodeFrame(const uint8_t *Buf, size_t Len,
                                  WireFrame &F, size_t &Consumed) {
  Consumed = 0;
  if (Len < 4)
    return FrameDecode::NeedMore;
  uint32_t Payload = wireGet32(Buf);
  // A bad announced length condemns the whole stream: an oversized value
  // is a hostile or corrupt peer (reject before buffering it), and a
  // truncated one can never complete into a known frame shape.
  if (Payload > WireMaxPayload || Payload != WireFramePayload)
    return FrameDecode::Malformed;
  if (Len < 4 + Payload)
    return FrameDecode::NeedMore;
  uint8_t T = Buf[4];
  if (T < WireFrame::Hello || T > WireFrame::BarrierAck)
    return FrameDecode::Malformed;
  F.T = T;
  F.A = wireGet32(Buf + 5);
  F.B = wireGet32(Buf + 9);
  F.Kind = wireGet32(Buf + 13);
  F.Seq = wireGet64(Buf + 17);
  Consumed = 4 + Payload;
  return FrameDecode::Ok;
}

Packet sim::frameHeader(const WireFrame &F) {
  return makeWireHeader(static_cast<HostId>(F.A), static_cast<HostId>(F.B),
                        static_cast<Value>(F.Kind), F.Seq);
}

sim::WireFrame sim::deliverFrame(const Packet &P) {
  WireFrame F;
  F.T = WireFrame::Deliver;
  F.A = static_cast<uint32_t>(P.getOr(ipSrcField(), 0));
  F.B = static_cast<uint32_t>(P.getOr(ipDstField(), 0));
  F.Kind = static_cast<uint32_t>(P.getOr(kindField(), 0));
  F.Seq = static_cast<uint64_t>(P.getOr(seqField(), 0));
  return F;
}
