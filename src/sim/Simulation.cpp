//===- sim/Simulation.cpp - Discrete-event network simulator --------------===//

#include "sim/Simulation.h"

#include <algorithm>
#include <cassert>

using namespace eventnet;
using namespace eventnet::sim;
using eventnet::consistency::TraceEntry;
using eventnet::netkat::Packet;

namespace {
// Shorthands for the shared wire-format fields (sim/Wire.h).
FieldId ipDst() { return sim::ipDstField(); }
FieldId probeF() { return sim::probeField(); }
} // namespace

double Simulation::FlowStats::goodputBps() const {
  double Dur = LastDelivery - FirstDelivery;
  if (Dur <= 0)
    return 0;
  return static_cast<double>(PayloadBytesDelivered) * 8.0 / Dur;
}

double Simulation::FlowStats::lossRate() const {
  if (PktsSent == 0)
    return 0;
  return 1.0 - static_cast<double>(PktsDelivered) /
                   static_cast<double>(PktsSent);
}

Simulation::Simulation(const nes::Nes &N, const topo::Topology &Topo, Mode M,
                       SimParams P)
    : N(N), Topo(Topo), M(M), P(P), Rand(P.Seed) {
  for (SwitchId Sw : Topo.switches()) {
    SwitchSim &S = Switches[Sw];
    if (M != Mode::Nes)
      S.Installed = N.configOf(N.emptySet()).tableFor(Sw);
  }
}

void Simulation::schedule(double At, std::function<void()> Fn) {
  assert(At >= Now && "scheduling into the past");
  Queue.push({At, EventSeq++, std::move(Fn)});
}

void Simulation::run(double Until) {
  while (!Queue.empty() && std::get<0>(Queue.top()) <= Until) {
    auto [At, Seq, Fn] =
        std::move(const_cast<QueueItem &>(Queue.top()));
    Queue.pop();
    Now = At;
    Fn();
  }
  Now = Until;
}

unsigned Simulation::overheadBytes() const {
  if (P.OverheadBytes)
    return P.OverheadBytes;
  // 2B tag + 2B shim header + the event-digest bitmap.
  return 4 + (N.numEvents() + 7) / 8;
}

Packet Simulation::makeHeader(HostId From, HostId To, Value Kind,
                              uint64_t Seq) {
  return makeWireHeader(From, To, Kind, Seq);
}

//===----------------------------------------------------------------------===//
// Data path
//===----------------------------------------------------------------------===//

void Simulation::hostSend(HostId From, Packet Header,
                          unsigned PayloadBytes) {
  ++Emissions;
  Location At = Topo.hostLoc(From);
  SimPacket Pk;
  Pk.Pkt = std::move(Header);
  Pk.Pkt.setLoc(At);
  Pk.PayloadBytes = PayloadBytes;
  Pk.WireBytes = PayloadBytes + (M == Mode::Nes ? overheadBytes() : 0);
  if (M == Mode::Nes) {
    // IN rule: stamp the ingress switch's current event-set tag.
    auto Tag = N.setIndex(Switches[At.Sw].E);
    assert(Tag && "switch register left the NES family");
    Pk.Tag = *Tag;
  }
  Pk.TraceParent = -1;
  // Log the emission now: the tag above reflects the switch state at
  // this instant, so the trace's per-switch order must place the
  // emission here, not at processing time.
  TraceEntry Entry;
  Entry.Lp = Pk.Pkt;
  Entry.Parent = -1;
  Pk.TraceParent = Trace.append(std::move(Entry));
  Pk.IngressLogged = true;
  enterSwitch(std::move(Pk), Now);
}

void Simulation::enterSwitch(SimPacket Pk, double At) {
  SwitchId Sw = Pk.Pkt.sw();
  auto It = Switches.find(Sw);
  assert(It != Switches.end() && "packet at unknown switch");
  SwitchSim &S = It->second;
  double PerPacket =
      P.SwitchDelaySec + (M == Mode::Nes ? P.NesTagProcessingSec : 0);
  double Start = std::max(At, S.BusyUntil) + PerPacket;
  S.BusyUntil = Start;
  auto Shared = std::make_shared<SimPacket>(std::move(Pk));
  schedule(Start, [this, Shared] { processAtSwitch(std::move(*Shared)); });
}

void Simulation::processAtSwitch(SimPacket Pk) {
  ++Hops;
  SwitchId Sw = Pk.Pkt.sw();
  SwitchSim &S = Switches[Sw];

  // Log the ingress located packet (link arrivals are logged here, at
  // processing time; host emissions were logged at IN time).
  if (!Pk.IngressLogged) {
    TraceEntry Entry;
    Entry.Lp = Pk.Pkt;
    Entry.Parent = Pk.TraceParent;
    Pk.TraceParent = Trace.append(std::move(Entry));
    Pk.IngressLogged = true;
  }
  int Idx = Pk.TraceParent;

  std::vector<Packet> Outs;
  DenseBitSet OutDigest;

  switch (M) {
  case Mode::Nes: {
    DenseBitSet Known = S.E | Pk.Digest;
    noteSwitchLearned(Sw, S.E, Known);

    // Fresh events (greedy, consistent; cf. runtime::Machine).
    DenseBitSet Fresh;
    for (nes::EventId E = 0; E != N.numEvents(); ++E) {
      if (Known.test(E) || Fresh.test(E))
        continue;
      if (!N.event(E).matches(Pk.Pkt))
        continue;
      DenseBitSet Ext = Known | Fresh;
      Ext.set(E);
      if (N.enables(Known, E) && N.con(Ext)) {
        Fresh.set(E);
        onEventOccurred(E);
      }
    }

    Outs = N.configOf(Pk.Tag).tableFor(Sw).apply(Pk.Pkt);
    DenseBitSet NewE = Known | Fresh;
    noteSwitchLearned(Sw, S.E, NewE);
    S.E = NewE;
    OutDigest = Pk.Digest | NewE;
    break;
  }
  case Mode::Uncoordinated: {
    // Event detection against the global occurred set (an optimistic
    // model of the baseline's controller watching packet-ins). Enabling
    // is judged against the set as of this packet's arrival so one
    // packet fires at most one link in a causal chain.
    DenseBitSet Before = Occurred;
    for (nes::EventId E = 0; E != N.numEvents(); ++E) {
      if (Before.test(E))
        continue;
      if (!N.event(E).matches(Pk.Pkt))
        continue;
      DenseBitSet Ext = Before;
      Ext.set(E);
      if (N.enables(Before, E) && N.con(Ext))
        onEventOccurred(E);
    }
    Outs = S.Installed.apply(Pk.Pkt);
    break;
  }
  case Mode::StaticReference:
    Outs = S.Installed.apply(Pk.Pkt);
    break;
  }

  for (Packet &Out : Outs) {
    SimPacket Child;
    Child.Tag = Pk.Tag;
    Child.Digest = OutDigest;
    Child.PayloadBytes = Pk.PayloadBytes;
    Child.WireBytes = Pk.WireBytes;
    Child.FlowSeq = Pk.FlowSeq;
    Child.TraceParent = Idx;
    Child.Pkt = std::move(Out);
    egress(std::move(Child));
  }
}

void Simulation::egress(SimPacket Pk) {
  Location At = Pk.Pkt.loc();

  if (auto H = Topo.hostAt(At)) {
    TraceEntry Entry;
    Entry.Lp = Pk.Pkt;
    Entry.Parent = Pk.TraceParent;
    Entry.IsDelivery = true;
    Pk.TraceParent = Trace.append(std::move(Entry));
    HostId Host = *H;
    auto Shared = std::make_shared<SimPacket>(std::move(Pk));
    schedule(Now + P.LinkLatencySec,
             [this, Host, Shared] { deliverToHost(Host, *Shared); });
    return;
  }

  auto Dst = Topo.linkFrom(At);
  if (!Dst)
    return; // dangling port: discard

  // Fault hook: the same content-addressed verdict the engine computes
  // at this site for this packet (faults/Injector.h).
  faults::Action FA = faults::Action::None;
  if (Faults)
    FA = Faults->decide(At.Sw, At.Pt, Pk.Pkt);
  if (FA == faults::Action::Drop) {
    // The egress occurrence never happens; the chain ends at the
    // processing entry, which the ledger excuses for the checker.
    Ledger.Records.push_back(faults::Injector::recordAt(
        faults::FaultKind::Drop, At.Sw, At.Pt, Pk.Pkt));
    if (Pk.TraceParent >= 0)
      Ledger.ExcusedEntries.push_back(Pk.TraceParent);
    ++FC.Drops;
    return;
  }

  LinkSim &L = Links[At];
  double Tx = static_cast<double>(Pk.WireBytes) * 8.0 / P.LinkBandwidthBps;
  double Start = std::max(Now, L.BusyUntil);
  if (Start - Now > P.MaxQueueDelaySec)
    return; // drop-tail: queue is full (no egress occurrence logged)
  L.BusyUntil = Start + Tx;

  int ChainParent = Pk.TraceParent;
  TraceEntry Entry;
  Entry.Lp = Pk.Pkt;
  Entry.Parent = ChainParent;
  Pk.TraceParent = Trace.append(std::move(Entry));

  double Arrive = Start + Tx + P.LinkLatencySec;
  if (FA == faults::Action::Delay) {
    // Held back on the wire: later traffic overtakes it (reordering).
    Arrive += Faults->plan().DelayExtraSec;
    Ledger.Records.push_back(faults::Injector::recordAt(
        faults::FaultKind::Delay, At.Sw, At.Pt, Pk.Pkt));
    ++FC.Delays;
  }
  Location To = *Dst;
  Pk.IngressLogged = false; // the arrival is logged at processing time
  auto Shared = std::make_shared<SimPacket>(std::move(Pk));
  schedule(Arrive, [this, To, Shared] {
    Shared->Pkt.setLoc(To);
    enterSwitch(std::move(*Shared), Now);
  });

  if (FA == faults::Action::Dup) {
    // Duplicate copy: its own egress entry rooted at the same parent
    // (the trace stays a tree); the ledger marks that entry so the
    // checker prunes the duplicate subtree. The copy consumes its own
    // transmission slot right behind the original.
    SimPacket DupPk = *Shared;
    DupPk.FromDup = true;
    TraceEntry DupEntry;
    DupEntry.Lp = DupPk.Pkt;
    DupEntry.Parent = ChainParent;
    DupPk.TraceParent = Trace.append(std::move(DupEntry));
    Ledger.DupEntries.push_back(DupPk.TraceParent);
    Ledger.Records.push_back(faults::Injector::recordAt(
        faults::FaultKind::Dup, At.Sw, At.Pt, DupPk.Pkt));
    ++FC.Dups;
    double DupStart = std::max(Now, L.BusyUntil);
    L.BusyUntil = DupStart + Tx;
    double DupArrive = DupStart + Tx + P.LinkLatencySec;
    auto DupShared = std::make_shared<SimPacket>(std::move(DupPk));
    schedule(DupArrive, [this, To, DupShared] {
      DupShared->Pkt.setLoc(To);
      enterSwitch(std::move(*DupShared), Now);
    });
  }
}

//===----------------------------------------------------------------------===//
// Controller
//===----------------------------------------------------------------------===//

void Simulation::onEventOccurred(nes::EventId E) {
  if (Occurred.test(E))
    return;
  Occurred.set(E);
  EventTimes[E] = Now;

  if (M == Mode::Nes) {
    schedule(Now + P.CtrlLatencySec, [this, E] {
      CtrlKnown.set(E);
      if (!P.CtrlBroadcast)
        return;
      // CTRLSEND to every switch.
      double At = Now + P.CtrlLatencySec;
      for (const auto &[Sw, St] : Switches) {
        SwitchId Target = Sw;
        schedule(At, [this, Target] {
          SwitchSim &S = Switches[Target];
          DenseBitSet NewE = S.E | CtrlKnown;
          noteSwitchLearned(Target, S.E, NewE);
          S.E = NewE;
        });
      }
    });
    return;
  }

  if (M == Mode::Uncoordinated) {
    // The controller hears about the event (with the event-set as of the
    // notification), waits, then walks the switches in a random order
    // installing the corresponding configuration.
    auto SetAtEvent = N.setIndex(Occurred);
    assert(SetAtEvent && "occurred set left the NES family");
    nes::SetId Snapshot = *SetAtEvent;
    schedule(Now + P.CtrlLatencySec + P.UncoordDelaySec, [this, Snapshot] {
      const topo::Configuration &Cfg = N.configOf(Snapshot);
      std::vector<SwitchId> Order;
      for (const auto &[Sw, St] : Switches)
        Order.push_back(Sw);
      Rand.shuffle(Order);
      double At = Now;
      for (SwitchId Sw : Order) {
        At += P.UncoordPerSwitchGapSec;
        flowtable::Table T = Cfg.tableFor(Sw);
        schedule(At, [this, Sw, T] { Switches[Sw].Installed = T; });
      }
    });
  }
}

void Simulation::noteSwitchLearned(SwitchId Sw, const DenseBitSet &Before,
                                   const DenseBitSet &After) {
  After.forEach([&](unsigned E) {
    if (Before.test(E))
      return;
    auto Key = std::make_pair(Sw, static_cast<nes::EventId>(E));
    if (!LearnTimes.count(Key))
      LearnTimes[Key] = Now;
  });
}

double Simulation::eventTime(nes::EventId E) const {
  auto It = EventTimes.find(E);
  return It == EventTimes.end() ? -1 : It->second;
}

//===----------------------------------------------------------------------===//
// Host applications
//===----------------------------------------------------------------------===//

void Simulation::deliverToHost(HostId H, SimPacket Pk) {
  Delivered[H].push_back({Now, Pk.Pkt});
  if (Pk.FromDup)
    ++FC.DupDelivered;

  Value Kind = Pk.Pkt.getOr(kindField(), KindData);
  Value Dst = Pk.Pkt.getOr(ipDst(), -1);
  if (Dst != static_cast<Value>(H))
    return; // not addressed to this host (e.g. a flooded copy): ignore

  if (Kind == KindRequest) {
    // Echo: reply to the sender.
    Value Src = Pk.Pkt.getOr(ipSrcField(), -1);
    uint64_t Seq = static_cast<uint64_t>(Pk.Pkt.getOr(seqField(), 0));
    if (Src < 0)
      return;
    schedule(Now + P.HostDelaySec, [this, H, Src, Seq] {
      hostSend(H, makeHeader(H, static_cast<HostId>(Src), KindReply, Seq),
               P.AckBytes);
    });
    return;
  }

  if (Kind == KindReply) {
    uint64_t Seq = static_cast<uint64_t>(Pk.Pkt.getOr(seqField(), 0));
    auto It = AwaitingReply.find(Seq);
    if (It == AwaitingReply.end())
      return; // duplicate or timed-out reply
    PingRecord &R = Pings[It->second];
    R.Succeeded = true;
    R.Rtt = Now - R.SentAt;
    AwaitingReply.erase(It);
    return;
  }

  if (Kind == KindData) {
    ++Flow.PktsDelivered;
    Flow.PayloadBytesDelivered += Pk.PayloadBytes;
    if (Flow.FirstDelivery == 0)
      Flow.FirstDelivery = Now;
    Flow.LastDelivery = Now;
    // Ack back to the sender (used by the TCP-like flow; harmless for
    // UDP, whose sender ignores acks).
    Value Src = Pk.Pkt.getOr(ipSrcField(), -1);
    if (Src >= 0) {
      uint64_t Seq = static_cast<uint64_t>(Pk.Pkt.getOr(seqField(), 0));
      schedule(Now + P.HostDelaySec, [this, H, Src, Seq] {
        Packet Ack = makeHeader(H, static_cast<HostId>(Src), KindAck, Seq);
        hostSend(H, Ack, P.AckBytes);
      });
    }
    return;
  }

  if (Kind == KindAck) {
    uint64_t Seq = static_cast<uint64_t>(Pk.Pkt.getOr(seqField(), 0));
    for (size_t I = 0; I != TcpFlows.size(); ++I)
      if (TcpFlows[I].From == static_cast<HostId>(
                                  Pk.Pkt.getOr(ipDst(), -1)))
        tcpOnAck(I, Seq);
    return;
  }

  // KindProbe: consumed silently.
}

const std::vector<std::pair<double, Packet>> &
Simulation::deliveriesTo(HostId H) const {
  static const std::vector<std::pair<double, Packet>> Empty;
  auto It = Delivered.find(H);
  return It == Delivered.end() ? Empty : It->second;
}

//===----------------------------------------------------------------------===//
// Traffic scheduling
//===----------------------------------------------------------------------===//

void Simulation::schedulePing(double At, HostId From, HostId To,
                              double Timeout) {
  schedule(At, [this, From, To, Timeout] {
    uint64_t Seq = NextPingSeq++;
    PingRecord R;
    R.SentAt = Now;
    R.From = From;
    R.To = To;
    Pings.push_back(R);
    size_t Idx = Pings.size() - 1;
    AwaitingReply[Seq] = Idx;
    hostSend(From, makeHeader(From, To, KindRequest, Seq), P.AckBytes);
    schedule(Now + Timeout, [this, Seq] { AwaitingReply.erase(Seq); });
  });
}

void Simulation::scheduleInjection(double At, HostId From,
                                   netkat::Packet Header) {
  schedule(At, [this, From, Header = std::move(Header)]() mutable {
    hostSend(From, std::move(Header), P.AckBytes);
  });
}

void Simulation::scheduleProbe(double At, HostId From, HostId To) {
  schedule(At, [this, From, To] {
    Packet H = makeHeader(From, To, KindProbe, 0);
    H.set(probeF(), 1);
    hostSend(From, std::move(H), P.AckBytes);
  });
}

void Simulation::scheduleUdpFlow(double Start, double End, HostId From,
                                 HostId To, double Bps) {
  double Interval = static_cast<double>(P.PayloadBytes) * 8.0 / Bps;
  for (double At = Start; At < End; At += Interval)
    schedule(At, [this, From, To] {
      ++Flow.PktsSent;
      Packet H = makeHeader(From, To, KindData, 0);
      hostSend(From, std::move(H), P.PayloadBytes);
    });
}

void Simulation::scheduleTcpFlow(double Start, double End, HostId From,
                                 HostId To) {
  TcpState T;
  T.End = End;
  T.From = From;
  T.To = To;
  TcpFlows.push_back(T);
  size_t Idx = TcpFlows.size() - 1;
  schedule(Start, [this, Idx] { tcpTrySend(Idx); });
}

void Simulation::tcpTrySend(size_t FlowIdx) {
  TcpState &T = TcpFlows[FlowIdx];
  while (Now < T.End &&
         T.InFlight.size() < static_cast<size_t>(T.Window)) {
    uint64_t Seq = T.NextSeq++;
    T.InFlight[Seq] = Now;
    ++Flow.PktsSent;
    Packet H = makeHeader(T.From, T.To, KindData, Seq);
    hostSend(T.From, std::move(H), P.PayloadBytes);
    double Rto = std::max(4 * T.RttEstimate, 0.05);
    schedule(Now + Rto, [this, FlowIdx, Seq] { tcpOnTimeout(FlowIdx, Seq); });
  }
}

void Simulation::tcpOnAck(size_t FlowIdx, uint64_t Seq) {
  TcpState &T = TcpFlows[FlowIdx];
  auto It = T.InFlight.find(Seq);
  if (It == T.InFlight.end())
    return;
  T.RttEstimate = 0.8 * T.RttEstimate + 0.2 * (Now - It->second);
  T.InFlight.erase(It);
  T.Window += 1.0 / T.Window; // additive increase
  tcpTrySend(FlowIdx);
}

void Simulation::tcpOnTimeout(size_t FlowIdx, uint64_t Seq) {
  TcpState &T = TcpFlows[FlowIdx];
  auto It = T.InFlight.find(Seq);
  if (It == T.InFlight.end())
    return; // already acked
  T.InFlight.erase(It);
  T.Window = std::max(T.Window / 2, 1.0); // multiplicative decrease
  tcpTrySend(FlowIdx);
}
